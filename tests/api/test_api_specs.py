"""Spec dataclasses: validation, dict/JSON round-trips (incl. property tests)."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.specs import (
    AnalysisSpec,
    FaultSpec,
    GraphSpec,
    ScenarioSpec,
    spec_hash,
)
from repro.errors import SpecError

# JSON-safe parameter values (what spec params may carry).
json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=12),
)
param_dicts = st.dictionaries(
    st.text(min_size=1, max_size=10), json_scalars, max_size=4
)


@st.composite
def graph_specs(draw, max_depth=2):
    params = dict(draw(param_dicts))
    if max_depth > 0 and draw(st.booleans()):
        params["base"] = draw(graph_specs(max_depth=max_depth - 1))
    return GraphSpec(draw(st.text(min_size=1, max_size=10)), params)


@st.composite
def scenario_specs(draw):
    fault = None
    if draw(st.booleans()):
        fault = FaultSpec(draw(st.text(min_size=1, max_size=10)), draw(param_dicts))
    analysis = AnalysisSpec(
        mode=draw(st.sampled_from(["node", "edge"])),
        pruner=draw(st.sampled_from([None, "prune", "prune2"])),
        epsilon=draw(st.one_of(st.none(), st.floats(min_value=0.01, max_value=1.0))),
        finder=draw(st.sampled_from([None, "hybrid", "sweep"])),
        exact_threshold=draw(st.integers(min_value=0, max_value=30)),
        measure_expansion=draw(st.booleans()),
    )
    return ScenarioSpec(
        graph=draw(graph_specs()),
        fault=fault,
        analysis=analysis,
        seed=draw(st.one_of(st.none(), st.integers(min_value=0, max_value=2**62))),
        label=draw(st.text(max_size=10)),
    )


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(graph_specs())
    def test_graph_spec_dict_round_trip(self, spec):
        assert GraphSpec.from_dict(spec.to_dict()) == spec

    @settings(max_examples=60, deadline=None)
    @given(scenario_specs())
    def test_scenario_dict_round_trip(self, spec):
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    @settings(max_examples=40, deadline=None)
    @given(scenario_specs())
    def test_scenario_json_round_trip(self, spec):
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.hash() == spec.hash()

    @settings(max_examples=40, deadline=None)
    @given(scenario_specs())
    def test_dict_form_is_json_serialisable(self, spec):
        json.dumps(spec.to_dict())  # must not raise

    def test_nested_graph_spec_round_trips(self):
        spec = GraphSpec(
            "chain_replacement",
            {"base": GraphSpec("expander", {"n": 32, "degree": 4, "seed": 1}), "k": 4},
        )
        restored = GraphSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec
        assert isinstance(restored.params["base"], GraphSpec)


class TestHashing:
    def test_hash_is_content_based(self):
        a = GraphSpec("torus", {"sides": 8, "d": 2})
        b = GraphSpec("torus", {"d": 2, "sides": 8})  # key order irrelevant
        assert spec_hash(a) == spec_hash(b) == a.key()

    def test_hash_differs_on_params(self):
        a = GraphSpec("torus", {"sides": 8, "d": 2})
        b = GraphSpec("torus", {"sides": 9, "d": 2})
        assert spec_hash(a) != spec_hash(b)

    def test_with_seed_changes_hash_not_graph_key(self):
        spec = ScenarioSpec(graph=GraphSpec("torus", {"sides": 8, "d": 2}), seed=1)
        other = spec.with_seed(2)
        assert spec.hash() != other.hash()
        assert spec.graph.key() == other.graph.key()


class TestValidation:
    def test_empty_generator_rejected(self):
        with pytest.raises(SpecError):
            GraphSpec("")

    def test_bad_mode_rejected(self):
        with pytest.raises(SpecError):
            AnalysisSpec(mode="vertex")

    def test_bad_epsilon_rejected(self):
        with pytest.raises(SpecError):
            AnalysisSpec(epsilon=1.5)

    def test_unknown_keys_rejected(self):
        with pytest.raises(SpecError):
            GraphSpec.from_dict({"generator": "torus", "params": {}, "extra": 1})
        with pytest.raises(SpecError):
            ScenarioSpec.from_dict(
                {"graph": {"generator": "torus", "params": {}}, "oops": True}
            )

    def test_missing_graph_rejected(self):
        with pytest.raises(SpecError):
            ScenarioSpec.from_dict({"seed": 1})

    def test_non_int_seed_rejected(self):
        with pytest.raises(SpecError):
            ScenarioSpec(graph=GraphSpec("torus"), seed="seven")

    def test_invalid_json_rejected(self):
        with pytest.raises(SpecError):
            ScenarioSpec.from_json("{not json")

    def test_non_json_param_rejected_at_construction(self):
        class Opaque:
            pass

        with pytest.raises(SpecError, match="not.*JSON-serialisable"):
            GraphSpec("torus", {"sides": Opaque()})

    def test_numpy_scalar_params_normalised(self):
        import numpy as np

        spec = GraphSpec("torus", {"sides": np.int64(8), "d": np.int32(2)})
        assert spec.params == {"sides": 8, "d": 2}
        assert type(spec.params["sides"]) is int
        assert GraphSpec.from_dict(spec.to_dict()) == spec

    def test_numpy_array_params_normalised(self):
        import numpy as np

        spec = GraphSpec("mesh", {"sides": np.array([4, 4])})
        assert spec.params == {"sides": [4, 4]}
        assert GraphSpec.from_dict(spec.to_dict()) == spec

    def test_specs_are_hashable_and_set_dedupable(self):
        a = ScenarioSpec(graph=GraphSpec("torus", {"sides": 8, "d": 2}), seed=1)
        b = ScenarioSpec(graph=GraphSpec("torus", {"d": 2, "sides": 8}), seed=1)
        c = a.with_seed(2)
        assert hash(a) == hash(b) and a == b
        assert {a, b, c} == {a, c}
        assert hash(GraphSpec("torus", {"sides": 8, "d": 2}))  # no TypeError

    def test_tuple_params_normalised_to_lists(self):
        spec = GraphSpec("mesh", {"sides": (4, 4)})
        assert spec.params == {"sides": [4, 4]}
        assert GraphSpec.from_dict(spec.to_dict()) == spec

    def test_graph_spec_inside_list_rejected(self):
        with pytest.raises(SpecError, match="direct parameter value"):
            GraphSpec("x", {"bases": [GraphSpec("torus", {"sides": 4, "d": 2})]})

    def test_graph_spec_in_fault_or_finder_params_rejected(self):
        inner = GraphSpec("torus", {"sides": 4, "d": 2})
        with pytest.raises(SpecError, match="GraphSpec"):
            FaultSpec("random_node", {"g": inner, "p": 0.1})
        with pytest.raises(SpecError, match="GraphSpec"):
            AnalysisSpec(finder="sweep", finder_params={"g": inner})
