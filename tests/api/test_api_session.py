"""Session semantics: caching, streaming, resumability, determinism."""

import pytest

import repro.api.engine as engine
from repro.api.session import Session
from repro.api.specs import AnalysisSpec, FaultSpec, GraphSpec, ScenarioSpec
from repro.api.store import ResultStore
from repro.errors import SpecError


def sweep(n=24, p_values=(0.05, 0.08, 0.1)):
    return [
        ScenarioSpec(
            graph=GraphSpec("torus", {"sides": 8, "d": 2}),
            fault=FaultSpec("random_node", {"p": p_values[s % len(p_values)]}),
            analysis=AnalysisSpec(),
            seed=s,
        )
        for s in range(n)
    ]


def _forbid_execution(monkeypatch):
    """Any engine execution after this call is a test failure."""

    def boom(*args, **kwargs):  # pragma: no cover - failing path
        raise AssertionError("engine executed during a warm run")

    monkeypatch.setattr(engine, "run", boom)
    monkeypatch.setattr(engine, "_run_task", boom)
    monkeypatch.setattr(engine, "_baseline_task", boom)
    monkeypatch.setattr(engine, "baseline_expansion", boom)


class TestCaching:
    def test_warm_batch_executes_nothing(self, tmp_path, monkeypatch):
        """Acceptance: a repeated >=20-scenario batch re-executes zero
        scenarios — no engine calls at all, baseline phase included."""
        specs = sweep(24)
        cold = Session(tmp_path / "store").run_batch(specs)
        _forbid_execution(monkeypatch)
        warm_session = Session(tmp_path / "store")
        warm = warm_session.run_batch(specs)
        assert [r.fingerprint() for r in warm] == [r.fingerprint() for r in cold]
        assert warm_session.hits == 24
        assert warm_session.misses == 0

    def test_cached_equals_fresh(self, tmp_path):
        specs = sweep(6)
        cold = Session(tmp_path / "s").run_batch(specs)
        warm = Session(tmp_path / "s").run_batch(specs)
        fresh = Session().run_batch(specs)  # storeless control
        assert [r.fingerprint() for r in cold] == [r.fingerprint() for r in warm]
        assert [r.fingerprint() for r in cold] == [r.fingerprint() for r in fresh]

    def test_partial_overlap_executes_only_new(self, tmp_path):
        Session(tmp_path / "s").run_batch(sweep(4))
        session = Session(tmp_path / "s")
        session.run_batch(sweep(10))
        assert session.hits == 4
        assert session.misses == 6

    def test_single_run_uses_store(self, tmp_path, monkeypatch):
        spec = sweep(1)[0]
        Session(tmp_path / "s").run(spec)
        _forbid_execution(monkeypatch)
        session = Session(tmp_path / "s")
        assert session.run(spec).spec == spec
        assert session.hits == 1

    def test_refresh_recomputes(self, tmp_path):
        spec = sweep(1)[0]
        first = Session(tmp_path / "s").run(spec)
        session = Session(tmp_path / "s", refresh=True)
        again = session.run(spec)
        assert session.misses == 1  # refresh never reads the store...
        assert again.fingerprint() == first.fingerprint()  # ...and reproduces

    def test_storeless_session_always_computes(self):
        session = Session()
        session.run_batch(sweep(4))
        session.run_batch(sweep(4))
        assert session.hits == 0
        assert session.misses == 8

    def test_accepts_open_store_instance(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        Session(store).run_batch(sweep(3))
        assert len(store) == 3

    def test_baseline_reused_from_store(self, tmp_path, monkeypatch):
        Session(tmp_path / "s").run_batch(sweep(4))
        # New scenario, same graph: the baseline *phase* must be a store
        # read, not a recomputation (the run itself still executes).
        def boom(*a, **k):  # pragma: no cover - failing path
            raise AssertionError("baseline recomputed despite store")

        monkeypatch.setattr(engine, "_baseline_task", boom)
        session = Session(tmp_path / "s")
        session.run_batch(sweep(5))  # seed 4 is new
        assert session.misses == 1


class TestDeterminism:
    def test_workers_1_vs_n_identical_fingerprints(self, tmp_path):
        specs = sweep(12)
        serial = Session(tmp_path / "a", workers=1).run_batch(specs)
        parallel = Session(tmp_path / "b", workers=4).run_batch(specs)
        assert [r.fingerprint() for r in serial] == [
            r.fingerprint() for r in parallel
        ]

    def test_parallel_cold_then_serial_warm(self, tmp_path):
        specs = sweep(12)
        cold = Session(tmp_path / "s", workers=4).run_batch(specs)
        warm_session = Session(tmp_path / "s", workers=1)
        warm = warm_session.run_batch(specs)
        assert warm_session.hits == 12
        assert [r.fingerprint() for r in warm] == [r.fingerprint() for r in cold]

    def test_order_preserved(self, tmp_path):
        specs = [sweep(8)[i] for i in (5, 2, 7, 0)]
        results = Session(tmp_path / "s", workers=2).run_batch(specs)
        assert [r.seed for r in results] == [5, 2, 7, 0]


class TestRunIter:
    def test_streams_incrementally_and_persists_before_yield(self, tmp_path):
        specs = sweep(6)
        session = Session(tmp_path / "s")
        stream = session.run_iter(specs)
        first = next(stream)
        assert first.seed == 0
        # The first result is on disk while five scenarios are still pending.
        assert ResultStore(tmp_path / "s").stats().results == 1
        assert [r.seed for r in stream] == [1, 2, 3, 4, 5]

    def test_interrupted_iter_resumes_from_store(self, tmp_path, monkeypatch):
        specs = sweep(8)
        session = Session(tmp_path / "s")
        stream = session.run_iter(specs)
        for _ in range(3):
            next(stream)
        stream.close()  # interrupt: 5 scenarios never ran
        calls = []
        real = engine._run_task

        def counting(payload):
            calls.append(payload[0].seed)
            return real(payload)

        monkeypatch.setattr(engine, "_run_task", counting)
        resumed = Session(tmp_path / "s")
        results = resumed.run_batch(specs)
        assert resumed.hits == 3
        assert sorted(calls) == [3, 4, 5, 6, 7]  # only the lost tail re-ran
        assert [r.seed for r in results] == list(range(8))

    def test_unordered_yields_cached_first(self, tmp_path):
        specs = sweep(6)
        Session(tmp_path / "s").run_batch(specs[3:])
        session = Session(tmp_path / "s")
        seeds = [r.seed for r in session.run_iter(specs, ordered=False)]
        assert seeds[:3] == [3, 4, 5]  # cached block served instantly
        assert sorted(seeds) == list(range(6))

    def test_fully_cached_iter_yields_everything(self, tmp_path, monkeypatch):
        specs = sweep(5)
        Session(tmp_path / "s").run_batch(specs)
        _forbid_execution(monkeypatch)
        results = list(Session(tmp_path / "s").run_iter(specs))
        assert [r.seed for r in results] == [0, 1, 2, 3, 4]

    def test_validates_eagerly(self, tmp_path):
        session = Session(tmp_path / "s")
        with pytest.raises(SpecError):
            session.run_iter([sweep(1)[0], "nope"])  # no iteration needed


class TestResumeAfterPartialWrite:
    def test_truncated_store_recomputes_only_lost_entries(self, tmp_path):
        specs = sweep(8)
        reference = Session(tmp_path / "s").run_batch(specs)
        store = ResultStore(tmp_path / "s")
        # Simulate a crash mid-append: truncate the shard segment holding
        # specs[5] half-way through that record — it and every later entry
        # in the same segment are lost, everything else stays warm.
        key = specs[5].hash()
        shard = store.engine.shard_for("results", key)
        entry = shard.entry(key)
        lost = {
            k
            for k in shard.keys()
            if shard.entry(k).seg == entry.seg
            and shard.entry(k).off >= entry.off
        }
        seg = store.engine.locate("results", key)[0]
        with open(seg, "r+b") as fh:
            fh.truncate(entry.off + 60)
        session = Session(tmp_path / "s")
        resumed = session.run_batch(specs)
        assert session.hits == 8 - len(lost)
        assert session.misses == len(lost)
        assert [r.fingerprint() for r in resumed] == [
            r.fingerprint() for r in reference
        ]
        # The store healed: next run is fully warm.
        follow_up = Session(tmp_path / "s")
        follow_up.run_batch(specs)
        assert follow_up.hits == 8


class TestEngineWrappers:
    def test_run_batch_store_param(self, tmp_path, monkeypatch):
        specs = sweep(21)
        cold = engine.run_batch(specs, store=tmp_path / "s")
        _forbid_execution(monkeypatch)
        warm = engine.run_batch(specs, store=tmp_path / "s")
        assert [r.fingerprint() for r in warm] == [r.fingerprint() for r in cold]

    def test_run_batch_without_store_unchanged(self):
        specs = sweep(4)
        a = engine.run_batch(specs)
        b = engine.run_batch(specs)
        assert [r.fingerprint() for r in a] == [r.fingerprint() for r in b]
