"""Registry behaviour: population by decorators, lookups, error paths."""

import pytest

from repro.api.registry import (
    FAULT_MODELS,
    FINDERS,
    GENERATORS,
    PRUNERS,
    Registry,
    list_fault_models,
    list_finders,
    list_generators,
    list_pruners,
    register_finder,
)
from repro.errors import (
    InvalidParameterError,
    ReproError,
    SpecError,
    UnknownComponentError,
)

# Importing the engine guarantees the component packages have registered.
import repro.api.engine  # noqa: F401


class TestPopulation:
    def test_core_generators_registered(self):
        for name in (
            "torus", "mesh", "hypercube", "expander", "chain_replacement",
            "butterfly", "debruijn", "complete_graph", "gnm_random",
        ):
            assert name in GENERATORS, name

    def test_fault_models_registered(self):
        for name in (
            "random_node", "separator", "degree", "greedy_boundary",
            "random_budget", "chain_center", "recursive_bisection", "axis_cut",
        ):
            assert name in FAULT_MODELS, name

    def test_pruners_registered(self):
        assert set(PRUNERS.names()) >= {"prune", "prune2"}

    def test_decorator_preserves_function(self):
        from repro.graphs.generators import torus
        from repro.pruning.prune import prune

        assert GENERATORS.get("torus").fn is torus
        assert PRUNERS.get("prune").fn is prune

    def test_seed_detection(self):
        assert GENERATORS.get("expander").seeded
        assert not GENERATORS.get("hypercube").seeded
        assert FAULT_MODELS.get("random_node").seeded
        assert not FAULT_MODELS.get("separator").seeded

    def test_chain_center_takes_raw(self):
        assert FAULT_MODELS.get("chain_center").takes_raw
        assert not FAULT_MODELS.get("random_node").takes_raw


class TestFinderRegistry:
    def test_builtin_finders_registered(self):
        assert set(FINDERS.names()) >= {"hybrid", "sweep", "exhaustive"}

    def test_entries_are_the_classes(self):
        from repro.pruning.cutfinder import HybridCutFinder, SweepCutFinder

        assert FINDERS.get("hybrid").fn is HybridCutFinder
        assert FINDERS.get("sweep").fn is SweepCutFinder

    def test_third_party_finder_plugs_in(self):
        from repro.api.engine import resolve_finder

        @register_finder("registry_test_finder")
        class NullFinder:
            def __init__(self, verbose=False):
                self.verbose = verbose

            def find(self, graph, threshold, kind, *, require_connected=False):
                return None

        finder = resolve_finder("registry_test_finder", {"verbose": True})
        assert isinstance(finder, NullFinder)
        assert finder.verbose


class TestDescribe:
    def test_describe_rows(self):
        rows = {r["name"]: r for r in GENERATORS.describe()}
        assert rows["expander"]["seeded"]
        assert not rows["torus"]["seeded"]
        assert rows["torus"]["kind"] == "generator"
        assert "sides" in rows["torus"]["signature"]
        assert rows["torus"]["summary"]  # first docstring line

    def test_list_functions_populate_and_report(self):
        assert {r["name"] for r in list_generators()} >= {"torus", "hypercube"}
        assert {r["name"] for r in list_fault_models()} >= {"random_node"}
        assert {r["name"] for r in list_pruners()} >= {"prune", "prune2"}
        assert {r["name"] for r in list_finders()} >= {"hybrid", "sweep"}

    def test_takes_raw_surfaces_in_metadata(self):
        rows = {r["name"]: r for r in list_fault_models()}
        assert rows["chain_center"]["takes_raw"]
        assert not rows["random_node"]["takes_raw"]


class TestLookupErrors:
    def test_unknown_key_raises_with_listing(self):
        with pytest.raises(UnknownComponentError, match="torus"):
            GENERATORS.get("no_such_generator")

    def test_unknown_component_is_repro_error(self):
        with pytest.raises(ReproError):
            FAULT_MODELS.get("nope")
        with pytest.raises(SpecError):
            PRUNERS.get("nope")
        with pytest.raises(KeyError):  # also a KeyError for dict-style callers
            PRUNERS.get("nope")


class TestRegistration:
    def test_duplicate_name_rejected(self):
        reg = Registry("thing")

        @reg.register("x")
        def f():
            return 1

        with pytest.raises(InvalidParameterError, match="already registered"):
            reg.register("x")(lambda: 2)

    def test_reregistering_same_function_is_idempotent(self):
        reg = Registry("thing")

        def f():
            return 1

        reg.register("x", f)
        reg.register("x", f)  # same object: no error (module re-imports)
        assert reg.get("x").fn is f

    def test_empty_name_rejected(self):
        reg = Registry("thing")
        with pytest.raises(InvalidParameterError):
            reg.register("")(lambda: 1)

    def test_iteration_and_len(self):
        reg = Registry("thing")
        reg.register("b", lambda: 1)
        reg.register("a", lambda: 2)
        assert list(reg) == ["a", "b"]
        assert len(reg) == 2
        assert "a" in reg and "c" not in reg
