"""Smoke + shape tests for the remaining experiment runners (E10, E11,
theorem-checker helpers, provenance of overlay graphs)."""

import numpy as np
import pytest

from repro.core.experiments import (
    experiment_e10_open_problem_span,
    experiment_e11_cutfinder_ablation,
)
from repro.errors import InvalidParameterError
from repro.faults.random_faults import random_node_faults
from repro.graphs.generators import can_overlay, torus
from repro.pruning.certificates import check_theorem34
from repro.pruning.prune import prune
from repro.pruning.prune2 import prune2


class TestE10:
    def test_rows_cover_all_families(self):
        rows = experiment_e10_open_problem_span(seed=0, n_samples=6)
        families = {r["family"] for r in rows}
        assert families == {
            "butterfly",
            "wrapped-butterfly",
            "debruijn",
            "shuffle-exchange",
            "mesh (reference)",
        }

    def test_ratios_sane(self):
        rows = experiment_e10_open_problem_span(seed=0, n_samples=6)
        for r in rows:
            assert 1.0 <= r["span_max"] <= 5.0
            assert r["samples"] > 0


class TestE11:
    def test_heuristics_never_cull_more_than_exact(self):
        rows = experiment_e11_cutfinder_ablation(seed=0, n_trials=3)
        small = {r["finder"]: r["mean_H"] for r in rows if r["graph"] == "torus-4x4"}
        assert small["sweep"] >= small["exhaustive"] - 1e-9
        assert small["sweep+refine"] >= small["exhaustive"] - 1e-9

    def test_identical_fault_sets_across_finders(self):
        """The deterministic re-seeding means rows are reproducible."""
        a = experiment_e11_cutfinder_ablation(seed=5, n_trials=2)
        b = experiment_e11_cutfinder_ablation(seed=5, n_trials=2)
        for ra, rb in zip(a, b):
            assert ra["mean_H"] == rb["mean_H"]


class TestCheckTheorem34:
    def test_pass_on_light_faults(self):
        g = torus(8, 2)
        sc = random_node_faults(g, 0.02, seed=0)
        res = prune2(sc.surviving, 0.5, 0.125)
        chk = check_theorem34(res, n_original=g.n, alpha_e=0.5, epsilon=0.125)
        assert chk.ok
        assert chk.surviving_size >= chk.half_n

    def test_fail_on_heavy_faults(self):
        g = torus(8, 2)
        sc = random_node_faults(g, 0.65, seed=1)
        res = prune2(sc.surviving, 0.5, 0.125)
        chk = check_theorem34(res, n_original=g.n, alpha_e=0.5, epsilon=0.125)
        assert not chk.size_ok

    def test_rejects_node_mode_result(self):
        g = torus(6, 2)
        res = prune(g, 0.5, 0.5)
        with pytest.raises(InvalidParameterError):
            check_theorem34(res, n_original=g.n, alpha_e=0.5, epsilon=0.125)


class TestOverlayProvenance:
    def test_can_overlay_is_root_graph(self):
        overlay = can_overlay(20, 2, seed=0)
        assert np.array_equal(overlay.original_ids, np.arange(overlay.n))

    def test_detached_resets_ids(self):
        g = torus(4, 2)
        sub = g.subgraph(np.arange(10))
        det = sub.detached(name="fresh")
        assert det.name == "fresh"
        assert np.array_equal(det.original_ids, np.arange(10))
        assert det == sub  # same structure

    def test_overlay_pipeline_end_to_end(self):
        """The bug class this guards: analyzer + stretch on a generator that
        internally carves a scaffold graph."""
        from repro.core import FaultExpansionAnalyzer
        from repro.graphs.traversal import largest_component
        from repro.routing.paths import stretch_statistics

        overlay = can_overlay(30, 2, seed=1)
        analyzer = FaultExpansionAnalyzer(overlay)
        report = analyzer.random_faults(0.1, seed=2)
        h = report.prune_result.surviving_graph
        if h.n >= 4:
            comp = largest_component(h)
            h_conn = h.subgraph(comp)
            stats = stretch_statistics(overlay, h_conn, n_pairs=10, seed=3)
            assert stats.n_pairs >= 0  # must not raise
