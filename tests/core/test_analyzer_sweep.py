"""Unit tests for the analyzer's fault-probability sweep API."""

import math

import numpy as np
import pytest

from repro.core import FaultExpansionAnalyzer
from repro.graphs.generators import torus
from repro.util.tables import format_row_dicts


class TestAnalyzerSweep:
    def test_rows_shape(self, small_torus):
        an = FaultExpansionAnalyzer(small_torus)
        rows = an.sweep([0.0, 0.1], trials=2, seed=0)
        assert len(rows) == 2
        assert set(rows[0]) == {
            "p", "trials", "mean_survivor_frac", "mean_expansion_retention",
        }

    def test_zero_p_full_survival(self, small_torus):
        an = FaultExpansionAnalyzer(small_torus)
        rows = an.sweep([0.0], trials=2, seed=1)
        assert rows[0]["mean_survivor_frac"] == 1.0
        assert rows[0]["mean_expansion_retention"] == pytest.approx(1.0)

    def test_survivors_decrease_with_p(self):
        an = FaultExpansionAnalyzer(torus(10, 2))
        rows = an.sweep([0.02, 0.3], trials=3, seed=2)
        assert rows[0]["mean_survivor_frac"] > rows[1]["mean_survivor_frac"]

    def test_deterministic(self, small_torus):
        an = FaultExpansionAnalyzer(small_torus)
        a = an.sweep([0.1], trials=2, seed=3)
        b = an.sweep([0.1], trials=2, seed=3)
        assert a == b

    def test_renders(self, small_torus):
        an = FaultExpansionAnalyzer(small_torus)
        rows = an.sweep([0.05], trials=1, seed=4)
        out = format_row_dicts(rows)
        assert "mean_survivor_frac" in out

    def test_total_collapse_gives_nan_retention(self):
        an = FaultExpansionAnalyzer(torus(4, 2))
        rows = an.sweep([1.0], trials=1, seed=5)
        assert rows[0]["mean_survivor_frac"] == 0.0
        assert math.isnan(rows[0]["mean_expansion_retention"])
