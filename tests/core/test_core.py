"""Unit tests for theory bounds, the analyzer facade, and reports."""

import math

import numpy as np
import pytest

from repro.core import FaultExpansionAnalyzer, bounds
from repro.errors import InvalidParameterError
from repro.faults.adversary import separator_attack
from repro.graphs.generators import cycle_graph, expander, torus
from repro.graphs.graph import Graph


class TestBounds:
    def test_prune_surviving_size(self):
        assert bounds.prune_surviving_size(100, 10, 0.5, 2) == pytest.approx(60)

    def test_prune_expansion(self):
        assert bounds.prune_expansion(0.6, 3) == pytest.approx(0.4)

    def test_prune_max_faults_condition(self):
        f = bounds.prune_max_faults(100, 0.5, 2)
        assert 2 * f / 0.5 <= 100 / 4 + 1e-9

    def test_chain_graph_size(self):
        assert bounds.chain_graph_size(10, 20, 4) == 90

    def test_chain_expansion_bounds_order(self):
        lo, hi = bounds.chain_expansion_bounds(8, 4, 0.5)
        assert 0 < lo < hi

    def test_chain_attack_component_bound(self):
        assert bounds.chain_attack_component_bound(4, 8) == 4 * 4 + 4 + 1

    def test_theorem25_shape(self):
        b1 = bounds.theorem25_fault_bound(1000, 0.1, 0.25)
        b2 = bounds.theorem25_fault_bound(1000, 0.1, 0.125)
        assert b2 > b1  # smaller epsilon costs more faults

    def test_theorem31_probability(self):
        p = bounds.theorem31_fault_probability(0.1, 0.5, 4)
        assert p == pytest.approx(3 * math.log(4) / 0.5 * 0.1)

    def test_theorem34_conditions(self):
        c = bounds.theorem34_conditions(1000, 4, 2.0)
        assert c["epsilon_max"] == pytest.approx(1 / 8)
        assert c["p_max"] == pytest.approx(1 / (2 * math.e * 4**8))
        assert c["alpha_e_min"] > 0

    def test_mesh_bounds(self):
        assert bounds.mesh_span_bound() == 2.0
        assert bounds.mesh_tolerable_fault_probability(2) > \
            bounds.mesh_tolerable_fault_probability(3)

    def test_distance_bound(self):
        assert bounds.distance_bound(0.5, 1024) > 0

    def test_invalid_inputs(self):
        with pytest.raises(InvalidParameterError):
            bounds.prune_surviving_size(10, 1, 0, 2)
        with pytest.raises(InvalidParameterError):
            bounds.theorem25_fault_bound(10, 0.5, 0)
        with pytest.raises(InvalidParameterError):
            bounds.mesh_tolerable_fault_probability(0)
        with pytest.raises(InvalidParameterError):
            bounds.theorem31_fault_probability(0.1, 0.5, 1)


class TestAnalyzer:
    def test_baseline_cached(self, small_torus):
        an = FaultExpansionAnalyzer(small_torus)
        a = an.baseline_expansion
        b = an.baseline_expansion
        assert a is b

    def test_random_faults_report(self, small_torus):
        an = FaultExpansionAnalyzer(small_torus)
        rep = an.random_faults(0.05, seed=0)
        assert rep.n_original == small_torus.n
        assert 0 <= rep.surviving_fraction <= 1
        assert rep.scenario.kind.startswith("random")

    def test_zero_faults_full_retention(self, small_torus):
        an = FaultExpansionAnalyzer(small_torus)
        rep = an.random_faults(0.0, seed=0)
        assert rep.surviving_fraction == 1.0
        assert rep.expansion_retention == pytest.approx(1.0)

    def test_adversarial_entry_point(self, small_torus):
        an = FaultExpansionAnalyzer(small_torus)
        rep = an.adversarial_faults(np.array([0, 1, 2]))
        assert rep.scenario.f == 3

    def test_scenario_graph_mismatch_rejected(self, small_torus):
        an = FaultExpansionAnalyzer(small_torus)
        other = torus(5, 2)
        sc = separator_attack(other, 2)
        with pytest.raises(InvalidParameterError):
            an.analyze_scenario(sc)

    def test_edge_mode(self, small_torus):
        an = FaultExpansionAnalyzer(small_torus, mode="edge")
        rep = an.random_faults(0.03, seed=1)
        assert rep.prune_result.kind == "edge"
        assert an.epsilon == pytest.approx(1 / (2 * small_torus.max_degree))

    def test_bad_mode(self, small_torus):
        with pytest.raises(InvalidParameterError):
            FaultExpansionAnalyzer(small_torus, mode="both")  # type: ignore[arg-type]

    def test_bad_epsilon(self, small_torus):
        with pytest.raises(InvalidParameterError):
            FaultExpansionAnalyzer(small_torus, epsilon=0.0)

    def test_render_report(self, small_torus):
        an = FaultExpansionAnalyzer(small_torus)
        rep = an.random_faults(0.05, seed=2)
        text = rep.render()
        assert "surviving" in text
        assert small_torus.name in text


class TestExperimentRunners:
    """Smoke-level checks that every runner returns well-formed rows;
    the integration tests pin the quantitative content."""

    def test_e2_rows(self):
        from repro.core.experiments import experiment_e2_chain_expansion

        rows = experiment_e2_chain_expansion(seed=0)
        assert len(rows) == 4
        assert all(r["upper_ok"] for r in rows)

    def test_e3_rows(self):
        from repro.core.experiments import experiment_e3_chain_attack

        rows = experiment_e3_chain_attack(seed=0)
        assert all(r["bound_ok"] for r in rows)
        # largest fraction shrinks as N grows for fixed k
        k4 = [r for r in rows if r["k"] == 4]
        assert k4[-1]["largest_frac"] <= k4[0]["largest_frac"]

    def test_e7_rows(self):
        from repro.core.experiments import experiment_e7_mesh_span

        rows = experiment_e7_mesh_span(seed=0, n_samples=6)
        assert all(r["ok"] for r in rows)
        assert all(r["virtual_connected_rate"] == 1.0 for r in rows)
