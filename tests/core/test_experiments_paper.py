"""Shape tests for the paper experiments not covered in test_core.py.

These call the runners at reduced sizes and assert the claim-shape columns —
the full-size runs live in the benchmark suite.
"""

import pytest

from repro.core.experiments import (
    experiment_e1_adversarial_prune,
    experiment_e4_uniform_attack,
    experiment_e5_random_disintegration,
    experiment_e6_prune2_threshold,
    experiment_e8_percolation_table,
    experiment_e9_routing,
)


class TestE1:
    def test_guarantees_hold(self):
        rows = experiment_e1_adversarial_prune(seed=0)
        assert rows
        assert all(r["size_ok"] and r["alpha_ok"] for r in rows)

    def test_zero_fault_rows_cull_nothing(self):
        rows = experiment_e1_adversarial_prune(seed=0)
        for r in rows:
            if r["f"] == 0:
                assert r["H_size"] == r["n"]


class TestE4:
    def test_bound_and_shatter(self):
        rows = experiment_e4_uniform_attack(seed=0)
        for r in rows:
            assert r["generic_ok"]
            assert r["generic_largest_frac"] <= r["eps"] + 0.01
            assert r["axis_largest_frac"] <= r["eps"] + 0.01

    def test_smaller_eps_needs_more_faults(self):
        rows = experiment_e4_uniform_attack(seed=0)
        by_graph = {}
        for r in rows:
            by_graph.setdefault(r["graph"], {})[r["eps"]] = r["f_generic"]
        for counts in by_graph.values():
            assert counts[0.125] >= counts[0.25]


class TestE5:
    def test_contrast(self):
        rows = experiment_e5_random_disintegration(seed=0, n_trials=6)
        chain = {r["p_over_alpha"]: r["gamma_mean"] for r in rows if "chain" in r["graph"]}
        tor = {r["p_over_alpha"]: r["gamma_mean"] for r in rows if "torus" in r["graph"]}
        assert chain[4.0] < 0.4
        assert tor[1.0] > 0.6

    def test_gamma_decreasing_in_p(self):
        rows = experiment_e5_random_disintegration(seed=0, n_trials=6)
        for label in {r["graph"] for r in rows}:
            series = [r["gamma_mean"] for r in rows if r["graph"] == label]
            assert series == sorted(series, reverse=True)


class TestE6:
    def test_success_at_theory_threshold(self):
        rows = experiment_e6_prune2_threshold(seed=0, n_trials=3)
        first = rows[0]
        assert first["p_fault"] <= 2 * first["theory_p_max"]
        assert first["success_rate"] == 1.0

    def test_failure_in_supercritical_regime(self):
        rows = experiment_e6_prune2_threshold(seed=0, n_trials=3)
        heavy = [r for r in rows if r["p_fault"] >= 0.5]
        assert heavy and all(r["success_rate"] < 1.0 for r in heavy)


class TestE8:
    def test_ordering(self):
        rows = experiment_e8_percolation_table(seed=0, n_trials=6, tol=0.04)
        vals = {r["family"]: r["measured_p*"] for r in rows}
        assert vals["complete graph K_n"] < vals["hypercube Q_d"]
        assert vals["hypercube Q_d"] < vals["2-D mesh (n×n)"]


class TestE9:
    def test_stretch_within_bound(self):
        rows = experiment_e9_routing(seed=0)
        assert rows
        for r in rows:
            assert r["stretch_max"] <= r["dist_bound_O(a^-1 logn)"]
            assert r["survivor_frac"] > 0.5
