"""Unit tests for the ``python -m repro`` CLI."""

import pytest

from repro.__main__ import main
from repro.core.experiments import ALL_EXPERIMENTS


class TestCli:
    def test_list_flag(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for key in ALL_EXPERIMENTS:
            assert key in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "e1" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["e99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_runs_single_experiment(self, capsys):
        assert main(["e2", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "E2" in out
        assert "alpha_times_k" in out

    def test_seed_changes_output_not_structure(self, capsys):
        main(["e2", "--seed", "1"])
        out1 = capsys.readouterr().out
        main(["e2", "--seed", "2"])
        out2 = capsys.readouterr().out
        assert out1.splitlines()[1] == out2.splitlines()[1]  # same header

    def test_registry_complete(self):
        assert set(ALL_EXPERIMENTS) == {
            "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11",
            "e12", "e13", "e14",
        }
