"""Unit tests for Laplacians, Fiedler vectors and Cheeger bounds."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import InvalidGraphError, NotConnectedError
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    hypercube,
    mesh,
    path_graph,
    torus,
)
from repro.graphs.graph import Graph
from repro.spectral.cheeger import cheeger_bounds
from repro.spectral.eigen import DENSE_CUTOFF, fiedler_vector, spectral_gap
from repro.spectral.laplacian import (
    adjacency_matrix,
    laplacian_matrix,
    normalized_laplacian,
)


class TestMatrices:
    def test_adjacency_symmetric(self, small_mesh):
        a = adjacency_matrix(small_mesh)
        assert (a != a.T).nnz == 0
        assert a.sum() == 2 * small_mesh.m

    def test_laplacian_rows_sum_zero(self, small_torus):
        lap = laplacian_matrix(small_torus)
        assert np.allclose(np.asarray(lap.sum(axis=1)).ravel(), 0.0)

    def test_laplacian_psd(self, small_mesh):
        lap = laplacian_matrix(small_mesh).toarray()
        vals = np.linalg.eigvalsh(lap)
        assert vals.min() >= -1e-9

    def test_normalized_laplacian_spectrum_range(self, small_cycle):
        lap = normalized_laplacian(small_cycle).toarray()
        vals = np.linalg.eigvalsh(lap)
        assert vals.min() >= -1e-9
        assert vals.max() <= 2.0 + 1e-9

    def test_normalized_handles_isolated(self):
        g = Graph.from_edges(3, [(0, 1)])
        lap = normalized_laplacian(g)
        assert lap.shape == (3, 3)
        assert lap[2, 2] == 1.0


class TestFiedler:
    def test_known_cycle_gap(self):
        # normalized laplacian of C_n: eigenvalues 1 - cos(2 pi k / n)
        n = 12
        g = cycle_graph(n)
        expected = 1 - np.cos(2 * np.pi / n)
        assert spectral_gap(g) == pytest.approx(expected, rel=1e-6)

    def test_known_complete_gap(self):
        # normalized laplacian of K_n: lambda_2 = n/(n-1)
        n = 9
        assert spectral_gap(complete_graph(n)) == pytest.approx(n / (n - 1), rel=1e-6)

    def test_known_hypercube_gap(self):
        # Q_d normalized: lambda_2 = 2/d
        d = 5
        assert spectral_gap(hypercube(d)) == pytest.approx(2 / d, rel=1e-6)

    def test_vector_orthogonal_to_degree_weighted_one(self, small_mesh):
        info = fiedler_vector(small_mesh)
        # v is an eigenvector of the symmetric normalised laplacian for
        # lambda2; check the eigen equation residual instead of a specific sign
        lap = normalized_laplacian(small_mesh)
        resid = lap @ info.vector - info.lambda2 * info.vector
        assert np.linalg.norm(resid) < 1e-8

    def test_sparse_path_matches_dense(self):
        g = torus(25, 2)  # 625 nodes > DENSE_CUTOFF -> sparse path
        assert g.n > DENSE_CUTOFF
        sparse_gap = spectral_gap(g)
        lap = normalized_laplacian(g).toarray()
        vals = np.linalg.eigvalsh(lap)
        assert sparse_gap == pytest.approx(vals[1], abs=1e-6)

    def test_disconnected_rejected(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(NotConnectedError):
            fiedler_vector(g)

    def test_tiny_rejected(self):
        with pytest.raises(NotConnectedError):
            fiedler_vector(Graph.empty(1))


class TestCheeger:
    def test_bounds_sandwich_true_conductance(self):
        # For C_n the conductance is 2/(n/2 * 2)... check inequality directly:
        g = cycle_graph(16)
        b = cheeger_bounds(g)
        # true conductance of C_16: cut 2 edges, min vol = 16 -> 1/8
        true_phi = 2 / 16
        assert b.conductance_lower <= true_phi + 1e-9
        assert b.conductance_upper >= true_phi - 1e-9

    def test_edge_expansion_lower_is_valid(self):
        g = hypercube(4)
        b = cheeger_bounds(g)
        # true edge expansion of Q_4 is 1 (dimension cut)
        assert b.edge_expansion_lower <= 1.0 + 1e-9

    def test_node_expansion_lower_consistency(self, small_torus):
        b = cheeger_bounds(small_torus)
        assert b.node_expansion_lower <= b.edge_expansion_lower

    def test_edgeless_rejected(self):
        with pytest.raises(InvalidGraphError):
            cheeger_bounds(Graph.empty(3))

    def test_describe_string(self, small_mesh):
        assert "λ₂" in cheeger_bounds(small_mesh).describe()
