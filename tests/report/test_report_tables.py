"""Unit tests for the canonical table model and renderers."""

import pytest

from repro.report.tables import (
    ExperimentTable,
    StatColumn,
    fmt_float,
    format_row_dicts,
    markdown_row_dicts,
    markdown_table,
)


def _table(**overrides):
    base = dict(
        experiment="e5",
        title="demo",
        rows=(
            {"graph": "torus", "p": 0.1, "gamma_mean": 0.9, "gamma_ci95": 0.05,
             "trials": 8, "ok": True},
            {"graph": "torus", "p": 0.4, "gamma_mean": 0.2, "gamma_ci95": 0.04,
             "trials": 8, "ok": False},
        ),
        paper_section="§3.1",
        caption="cap",
        key_columns=("graph", "p"),
        stat_columns=(StatColumn("gamma_mean", "gamma_ci95", "trials"),),
        check_columns=("ok",),
        provenance=({"kind": "sweep", "hash": "abc"},),
    )
    base.update(overrides)
    return ExperimentTable(**base)


class TestExperimentTable:
    def test_sequence_protocol(self):
        t = _table()
        assert len(t) == 2
        assert t[0]["graph"] == "torus"
        assert [r["p"] for r in t] == [0.1, 0.4]
        assert t[-1]["ok"] is False

    def test_rows_are_copied(self):
        rows = [{"a": 1}]
        t = ExperimentTable(experiment="e1", title="t", rows=rows)
        rows[0]["a"] = 99
        assert t[0]["a"] == 1

    def test_json_round_trip_preserves_everything(self):
        t = _table()
        back = ExperimentTable.from_json(t.to_json())
        assert back == t
        assert back.stat_columns[0].mean == "gamma_mean"
        assert back.key_columns == ("graph", "p")
        assert list(back[0].keys()) == list(t[0].keys())  # column order

    def test_digest_stable_and_content_sensitive(self):
        t = _table()
        assert t.digest() == _table().digest()
        changed = _table(caption="other")
        assert changed.digest() != t.digest()

    def test_row_key_uses_declared_columns(self):
        t = _table()
        assert t.row_key(t[0]) == "graph=torus|p=0.1"

    def test_row_key_defaults_to_non_stat_columns(self):
        t = _table(key_columns=())
        key = t.row_key(t[0])
        assert "gamma_mean" not in key
        assert "graph=torus" in key and "ok=yes" in key

    def test_checks_counts_booleans(self):
        assert _table().checks() == (1, 2)
        assert _table(check_columns=()).checks() == (0, 0)

    def test_to_text_and_markdown(self):
        t = _table()
        text = t.to_text()
        assert "demo" in text and "gamma_mean" in text
        md = t.to_markdown()
        assert md.splitlines()[0].startswith("| graph |")
        assert "| --- |" in md.splitlines()[1]


class TestMarkdownRenderers:
    def test_markdown_table_escapes_pipes(self):
        md = markdown_table(["a|b"], [["x|y"]])
        assert "a\\|b" in md and "x\\|y" in md

    def test_markdown_row_dicts_matches_format_row_dicts_columns(self):
        rows = [{"x": 1, "y": 2.5}]
        md = markdown_row_dicts(rows)
        txt = format_row_dicts(rows)
        assert "2.5" in md and "2.5" in txt

    def test_markdown_empty(self):
        assert markdown_row_dicts([]) == ""
        assert markdown_row_dicts([], title="T") == "**T**"

    def test_cell_rules_shared(self):
        md = markdown_table(["v"], [[True], [float("nan")], [3.0]])
        assert "yes" in md and "nan" in md and "| 3 |" in md

    def test_mismatched_row_raises(self):
        with pytest.raises(ValueError):
            markdown_table(["a", "b"], [[1]])


class TestFmtFloat:
    def test_still_exported_from_util(self):
        from repro.util.tables import fmt_float as legacy

        assert legacy is fmt_float
