"""Golden regression: ``paper run --smoke`` must reproduce committed tables.

``tests/golden/paper-smoke-seed0.tables.jsonl`` holds one JSON-encoded
:class:`~repro.report.tables.ExperimentTable` per line — the e1–e14 output
of ``PaperConfig(seed=0, scale=1, smoke=True)`` at the time the fixture
was committed.  The test re-runs the same configuration and compares via
:func:`~repro.report.manifest.diff_manifests`, the same CI-overlap rule
``paper diff`` uses: a drift is **flagged** only when an estimate moved
outside its own confidence interval, so hot-path rewrites (batched
engines, kernel swaps, executor changes) cannot silently shift results,
while honest wall-clock columns stay informational.

Regenerate the fixture only for *intentional* result changes (new
experiment defaults, seed-derivation changes, …)::

    PYTHONPATH=src python - <<'PY'
    import json, pathlib, tempfile
    from repro.report.paper import PaperConfig, run_paper
    with tempfile.TemporaryDirectory() as d:
        run = run_paper(PaperConfig(seed=0, scale=1, smoke=True),
                        pathlib.Path(d) / "art")
        pathlib.Path("tests/golden/paper-smoke-seed0.tables.jsonl").write_text(
            "\n".join(json.dumps(run.tables[e].to_dict(), sort_keys=True,
                                 separators=(",", ":"))
                      for e in sorted(run.tables)) + "\n")
    PY

and say why in the commit message — the diff of the fixture *is* the
review surface for the numeric change.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.report.manifest import build_manifest, diff_manifests
from repro.report.paper import PaperConfig, run_paper
from repro.report.tables import ExperimentTable

pytestmark = pytest.mark.golden

FIXTURE = Path(__file__).resolve().parents[1] / "golden" / (
    "paper-smoke-seed0.tables.jsonl"
)


def _golden_tables():
    tables = {}
    for line in FIXTURE.read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        table = ExperimentTable.from_dict(json.loads(line))
        tables[table.experiment] = table
    return tables


def test_fixture_covers_the_full_suite():
    assert sorted(_golden_tables()) == sorted(
        f"e{i}" for i in range(1, 15)
    ), "golden fixture must hold one table per experiment e1–e14"


@pytest.fixture(scope="module")
def smoke_run(tmp_path_factory):
    """One shared fresh --smoke run (the expensive part of this module)."""
    out = tmp_path_factory.mktemp("golden-smoke") / "artifact"
    config = PaperConfig(seed=0, scale=1, smoke=True)
    return config, run_paper(config, out)


def test_paper_smoke_reproduces_golden_tables(smoke_run):
    config, run = smoke_run
    golden = _golden_tables()
    assert sorted(run.tables) == sorted(golden)
    golden_manifest = build_manifest(golden, config.manifest_config())
    diff = diff_manifests(golden_manifest, run.manifest)
    assert diff.clean, (
        "paper --smoke drifted outside its confidence intervals vs the "
        "committed golden tables:\n" + diff.to_text()
    )


def test_paper_smoke_row_keys_and_checks_match_golden(smoke_run):
    """Beyond CI overlap: row identities and pass/fail check columns must
    match the fixture exactly (a flipped theorem check is a regression even
    when no stat column moved)."""
    _config, run = smoke_run
    for eid, golden_table in _golden_tables().items():
        fresh = run.tables[eid]
        assert [golden_table.row_key(r) for r in golden_table] == [
            fresh.row_key(r) for r in fresh
        ], f"{eid}: row identities changed"
        for g_row, f_row in zip(golden_table, fresh):
            for column in golden_table.check_columns:
                assert g_row.get(column) == f_row.get(column), (
                    f"{eid}: check column {column!r} flipped for row "
                    f"{golden_table.row_key(g_row)}"
                )
