"""Integration tests: the `repro paper` pipeline and CLI.

Runs use a two-experiment subset (e2: deterministic sweep, e5: Monte-Carlo
with CI columns) at smoke sizes, so the whole module stays fast while
covering the acceptance contract: artifact completeness, warm-store
zero-engine-call reruns with byte-identical manifests, render-without-
execution, and the CI-overlap diff semantics.
"""

import json

import pytest

from repro.__main__ import main
from repro.api.store import ResultStore
from repro.report.paper import (
    PaperConfig,
    diff_paper,
    render_paper,
    run_paper,
    table_cache_key,
)

SUBSET = ("e2", "e5")


def _run(tmp_path, name, seed=0, **kwargs):
    config = PaperConfig(seed=seed, smoke=True, experiments=SUBSET)
    return run_paper(config, tmp_path / name, **kwargs)


class TestRunPaper:
    def test_artifact_layout(self, tmp_path):
        run = _run(tmp_path, "out")
        out = tmp_path / "out"
        assert (out / "report.md").is_file()
        assert (out / "report.html").is_file()
        assert (out / "manifest.json").is_file()
        assert (out / "timings.json").is_file()
        assert sorted(p.name for p in (out / "tables").glob("*.json")) == [
            "e2.json", "e5.json",
        ]
        assert [p.name for p in (out / "figures").glob("*.svg")] == [
            "disintegration.svg",
        ]
        assert run.table_misses == 2 and run.table_hits == 0
        assert run.engine_calls > 0

    def test_warm_rerun_zero_engine_calls_and_identical_manifest(self, tmp_path):
        first = _run(tmp_path, "out")
        cold_manifest = (tmp_path / "out" / "manifest.json").read_bytes()
        second = _run(tmp_path, "out")
        assert second.engine_calls == 0
        assert second.scenario_hits == 0  # tables served before any scenario
        assert second.table_hits == 2 and second.table_misses == 0
        assert (tmp_path / "out" / "manifest.json").read_bytes() == cold_manifest
        assert first.manifest == second.manifest

    def test_refresh_recomputes(self, tmp_path):
        _run(tmp_path, "out")
        again = _run(tmp_path, "out", refresh=True)
        assert again.table_misses == 2

    def test_malformed_cached_table_is_a_miss_not_a_crash(self, tmp_path):
        _run(tmp_path, "out")
        store = ResultStore(tmp_path / "out" / "store")
        key = sorted(store.engine.keys("tables"))[0]
        seg, _entry = store.engine.locate("tables", key)
        record = json.loads(seg.read_text().splitlines()[0])
        record["payload"] = {"not": "a table"}
        lines = seg.read_text().splitlines()
        lines[0] = json.dumps(record)
        seg.write_text("\n".join(lines) + "\n")
        (seg.parent / "index.log").unlink()  # force a rebuild on next open
        again = _run(tmp_path, "out")
        assert again.table_misses == 1 and again.table_hits == 1
        assert again.engine_calls == 0  # scenario store still warm

    def test_subset_rerun_prunes_stale_artifact_files(self, tmp_path):
        _run(tmp_path, "out")
        config = PaperConfig(seed=0, smoke=True, experiments=("e2",))
        run_paper(config, tmp_path / "out")
        out = tmp_path / "out"
        assert [p.name for p in (out / "tables").glob("*.json")] == ["e2.json"]
        assert list((out / "figures").glob("*.svg")) == []  # e5's figure gone
        render_paper(out)
        manifest = json.loads((out / "manifest.json").read_text())
        assert list(manifest["experiments"]) == ["e2"]

    def test_cache_key_tracks_runner_code(self):
        from repro.report.paper import _runner_code_hash

        assert _runner_code_hash("e2") != _runner_code_hash("e3")
        assert _runner_code_hash("e2") == _runner_code_hash("e2")

    def test_explicit_store_is_shared_across_out_dirs(self, tmp_path):
        store = tmp_path / "shared-store"
        _run(tmp_path, "a", store=store)
        warm = _run(tmp_path, "b", store=store)
        assert warm.engine_calls == 0 and warm.table_hits == 2
        assert (tmp_path / "a" / "manifest.json").read_bytes() == (
            tmp_path / "b" / "manifest.json"
        ).read_bytes()

    def test_manifest_carries_provenance_and_cis(self, tmp_path):
        run = _run(tmp_path, "out")
        e5 = run.manifest["experiments"]["e5"]
        kinds = {p["kind"] for p in e5["provenance"]}
        assert kinds == {"graph", "sweep"}
        sweep = next(p for p in e5["provenance"] if p["kind"] == "sweep")
        assert sweep["seed_policy"] == "scenario" and sweep["trials"] == 8
        assert all(s["halfwidth"] is not None for s in e5["stats"])
        assert run.manifest["config"] == {
            "seed": 0, "scale": 1, "smoke": True, "experiments": list(SUBSET),
        }

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError):
            PaperConfig(experiments=("e99",))


class TestRenderPaper:
    def test_render_reproduces_reports_without_store(self, tmp_path):
        _run(tmp_path, "out")
        out = tmp_path / "out"
        before = {
            name: (out / name).read_bytes()
            for name in ("report.md", "report.html", "manifest.json")
        }
        (out / "report.md").unlink()
        render_paper(out)
        for name, content in before.items():
            assert (out / name).read_bytes() == content

    def test_render_missing_dir_fails(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            render_paper(tmp_path / "nope")


class TestDiffPaper:
    def test_different_seeds_diff_clean(self, tmp_path):
        _run(tmp_path, "a", seed=0)
        _run(tmp_path, "b", seed=3)
        diff = diff_paper(tmp_path / "a", tmp_path / "b")
        assert diff.clean
        assert any(e.column == "seed" for e in diff.informational)

    def test_tampered_mean_is_flagged(self, tmp_path):
        _run(tmp_path, "a", seed=0)
        _run(tmp_path, "b", seed=0)
        table_file = tmp_path / "b" / "tables" / "e5.json"
        payload = json.loads(table_file.read_text())
        payload["rows"][0]["gamma_mean"] = 5.0  # far outside any CI
        table_file.write_text(json.dumps(payload))
        render_paper(tmp_path / "b")
        diff = diff_paper(tmp_path / "a", tmp_path / "b")
        assert not diff.clean
        assert diff.flagged[0].column == "gamma_mean"


class TestCiCells:
    def test_wilson_halfwidth_contains_asymmetric_interval(self):
        """The differ assumes mean ± half; for Wilson intervals (asymmetric
        at extreme rates) the declared half must cover the far side, or two
        statistically compatible runs can false-flag (e.g. 4/4 vs 1/4)."""
        import math

        from repro.api.sweeps import PointStats
        from repro.core.experiments import _ci
        from repro.util.stats import wilson_interval

        for successes, n in ((4, 4), (1, 4), (0, 3)):
            lo, hi = wilson_interval(successes, n)
            mean = successes / n
            stats = PointStats(
                metric="prune2_success", n=n, mean=mean, std=0.0,
                ci_lo=lo, ci_hi=hi, halfwidth=(hi - lo) / 2.0,
                interval="wilson", minimum=0.0, maximum=1.0,
                p10=mean, p50=mean, p90=mean, n_skipped=0,
            )
            half = _ci(stats)
            assert half is not None
            assert mean - half <= lo + 1e-4 and hi - 1e-4 <= mean + half
        # the reviewer's concrete pair: symmetric halves must now overlap
        lo_a, hi_a = wilson_interval(4, 4)
        lo_b, hi_b = wilson_interval(1, 4)
        half_a = max(hi_a - 1.0, 1.0 - lo_a)
        half_b = max(hi_b - 0.25, 0.25 - lo_b)
        assert abs(1.0 - 0.25) <= half_a + half_b  # intervals truly overlap


class TestTableCache:
    def test_cache_key_depends_on_kwargs_and_experiment(self):
        assert table_cache_key("e2", {"seed": 0}) != table_cache_key("e3", {"seed": 0})
        assert table_cache_key("e2", {"seed": 0}) != table_cache_key("e2", {"seed": 1})
        assert table_cache_key("e2", {"seed": 0}) == table_cache_key("e2", {"seed": 0})

    def test_store_table_round_trip_and_corruption(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put_table("k1", {"rows": [1, 2]})
        assert store.get_table("k1") == {"rows": [1, 2]}
        assert store.stats().tables == 1
        # corrupt line is skipped, not fatal
        seg, _entry = store.engine.locate("tables", "k1")
        with open(seg, "a") as fh:
            fh.write("{broken\n")
        store.reload()
        assert store.get_table("k1") == {"rows": [1, 2]}
        assert store.corrupt_entries == 1
        # last entry wins; prune compacts
        store.put_table("k1", {"rows": [3]})
        counts = store.prune()
        assert counts["kept"] == 0  # no scenario results involved
        store.reload()
        assert store.get_table("k1") == {"rows": [3]}
        store.clear()
        assert store.get_table("k1") is None


class TestPaperCli:
    def test_run_render_diff_round_trip(self, tmp_path, capsys):
        out_a = tmp_path / "a"
        out_b = tmp_path / "b"
        args = ["paper", "run", "--smoke", "--only", "e2,e5"]
        assert main(args + ["--out", str(out_a)]) == 0
        assert "tables: 0 cached, 2 computed" in capsys.readouterr().out
        assert main(args + ["--out", str(out_a)]) == 0
        assert "engine calls: 0" in capsys.readouterr().out
        assert main(args + ["--out", str(out_b), "--seed", "3"]) == 0
        capsys.readouterr()

        assert main(["paper", "render", str(out_a)]) == 0
        capsys.readouterr()

        diff_json = tmp_path / "diff.json"
        code = main(["paper", "diff", str(out_a), str(out_b),
                     "--json", str(diff_json)])
        out = capsys.readouterr().out
        assert code == 0
        assert "clean" in out
        assert json.loads(diff_json.read_text())["clean"] is True

    def test_diff_exit_codes(self, tmp_path, capsys):
        assert main(["paper", "diff", str(tmp_path / "x"), str(tmp_path / "y")]) == 2
        capsys.readouterr()

    def test_usage_on_bad_action(self, capsys):
        assert main(["paper", "bogus"]) == 2
        assert "usage" in capsys.readouterr().err

    def test_unknown_only_subset(self, capsys, tmp_path):
        assert main(["paper", "run", "--only", "e99",
                     "--out", str(tmp_path / "o")]) == 2
        assert "unknown experiment" in capsys.readouterr().err
