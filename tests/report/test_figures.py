"""Unit tests for the dependency-free SVG chart layer."""

import xml.etree.ElementTree as ET

import pytest

from repro.report.figures import (
    PAPER_FIGURES,
    Series,
    bar_chart,
    line_chart,
    save_figure,
)
from repro.report.tables import ExperimentTable


def _parse(svg: str) -> ET.Element:
    root = ET.fromstring(svg)
    assert root.tag.endswith("svg")
    return root


class TestLineChart:
    def test_well_formed_and_deterministic(self):
        series = [
            Series("a", (0.0, 1.0, 2.0), (0.1, 0.5, 0.9), (0.05, 0.02, 0.01)),
            Series("b", (0.0, 1.0, 2.0), (0.9, 0.4, 0.2)),
        ]
        kwargs = dict(title="T", xlabel="x", ylabel="y", y_min=0.0, y_max=1.0)
        svg = line_chart(series, **kwargs)
        _parse(svg)
        assert svg == line_chart(series, **kwargs)  # byte-identical
        assert "T" in svg and "<circle" in svg and "<path" in svg

    def test_error_bars_only_for_finite_halfwidths(self):
        svg = line_chart(
            [Series("a", (0.0, 1.0), (0.5, 0.6),
                    (float("nan"), 0.1))],
        )
        _parse(svg)

    def test_none_halfwidth_column_tolerated_in_series_builder(self):
        from repro.report.figures import _series_by

        table = ExperimentTable(
            experiment="e5", title="t",
            rows=({"g": "a", "x": 0.0, "y": 0.5, "h": None},
                  {"g": "a", "x": 1.0, "y": 0.6, "h": 0.1}),
        )
        (series,) = _series_by(table, "g", "x", "y", "h")
        svg = line_chart([series])
        _parse(svg)

    def test_vlines_and_single_point(self):
        svg = line_chart(
            [Series("only", (0.5,), (0.25,))],
            vlines=((0.1, "thr"),),
        )
        _parse(svg)
        assert "thr" in svg

    def test_empty_series_list_raises(self):
        with pytest.raises(ValueError):
            line_chart([])

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            Series("a", (0.0, 1.0), (0.5,))
        with pytest.raises(ValueError):
            Series("a", (0.0,), (0.5,), (0.1, 0.2))


class TestBarChart:
    def test_well_formed_grouped(self):
        svg = bar_chart(
            ["t1", "t2"], [("f1", [10.0, 20.0]), ("f2", [15.0, 5.0])],
            title="B", ylabel="H",
        )
        _parse(svg)
        assert svg.count("<rect") >= 5  # background + 4 bars

    def test_mismatched_group_raises(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [("g", [1.0, 2.0])])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bar_chart([], [])


class TestPaperFigureBuilders:
    def test_registry_covers_at_least_four_figures(self):
        assert len(PAPER_FIGURES) >= 4
        ids = {eid for eid, _ in PAPER_FIGURES.values()}
        assert {"e5", "e8", "e11"} <= ids

    def test_builders_run_on_experiment_output(self, tmp_path):
        # Tiny smoke-sized runs of the experiments each figure plots.
        from repro.core.experiments import (
            experiment_e5_random_disintegration,
            experiment_e8_percolation_table,
            experiment_e11_cutfinder_ablation,
        )

        tables = {
            "e5": experiment_e5_random_disintegration(seed=0, n_trials=2),
            "e8": experiment_e8_percolation_table(seed=0, n_trials=2, tol=0.1),
            "e11": experiment_e11_cutfinder_ablation(seed=0, n_trials=1),
        }
        built = 0
        for name, (eid, builder) in PAPER_FIGURES.items():
            if eid not in tables:
                continue
            svg = builder(tables[eid])
            _parse(svg)
            written = save_figure(svg, tmp_path / f"{name}.svg")
            assert f"{name}.svg" in written
            assert (tmp_path / f"{name}.svg").read_text() == svg
            built += 1
        assert built >= 3
