"""Unit tests for manifest building and the CI-overlap diff."""

import pytest

from repro.report.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    diff_manifests,
    load_manifest,
    write_manifest,
)
from repro.report.tables import ExperimentTable, StatColumn


def _table(mean, half, *, n=8, checks=True):
    return ExperimentTable(
        experiment="e5",
        title="demo",
        rows=(
            {"graph": "torus", "p": 0.1, "gamma_mean": mean,
             "gamma_ci95": half, "trials": n, "ok": checks},
        ),
        key_columns=("graph", "p"),
        stat_columns=(StatColumn("gamma_mean", "gamma_ci95", "trials"),),
        check_columns=("ok",),
        provenance=({"kind": "sweep", "hash": "h", "seed_policy": "scenario",
                     "trials": n},),
    )


def _manifest(mean, half, *, seed=0, **kw):
    return build_manifest(
        {"e5": _table(mean, half, **kw)},
        {"seed": seed, "scale": 1, "smoke": True, "experiments": ["e5"]},
        figures={"disintegration": "<svg/>"},
    )


class TestBuildManifest:
    def test_structure(self):
        m = _manifest(0.5, 0.1)
        assert m["schema"] == MANIFEST_SCHEMA
        assert m["config"]["seed"] == 0
        assert set(m["versions"]) == {"python", "numpy", "repro"}
        e5 = m["experiments"]["e5"]
        assert e5["rows"] == 1
        assert e5["checks"] == {"passed": 1, "total": 1}
        assert e5["provenance"][0]["hash"] == "h"
        (stat,) = e5["stats"]
        assert stat == {
            "row": "graph=torus|p=0.1", "column": "gamma_mean",
            "mean": 0.5, "halfwidth": 0.1, "n": 8,
        }
        assert m["figures"] == {
            "disintegration": m["figures"]["disintegration"]}

    def test_deterministic_and_wall_clock_free(self):
        import json

        a, b = _manifest(0.5, 0.1), _manifest(0.5, 0.1)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
        assert "timing" not in json.dumps(a)

    def test_round_trip_via_file(self, tmp_path):
        m = _manifest(0.5, 0.1)
        write_manifest(m, tmp_path / "manifest.json")
        assert load_manifest(tmp_path / "manifest.json") == m

    def test_load_rejects_wrong_schema(self, tmp_path):
        m = _manifest(0.5, 0.1)
        m["schema"] = 999
        write_manifest(m, tmp_path / "manifest.json")
        with pytest.raises(ValueError):
            load_manifest(tmp_path / "manifest.json")


class TestDiff:
    def test_identical_is_clean_and_silent(self):
        d = diff_manifests(_manifest(0.5, 0.1), _manifest(0.5, 0.1))
        assert d.clean and not d.informational

    def test_overlapping_cis_are_informational(self):
        d = diff_manifests(_manifest(0.5, 0.1), _manifest(0.55, 0.1, seed=3))
        assert d.clean
        infos = {(e.location, e.column) for e in d.informational}
        assert ("config", "seed") in infos
        assert ("graph=torus|p=0.1", "gamma_mean") in infos

    def test_disjoint_cis_are_flagged(self):
        d = diff_manifests(_manifest(0.5, 0.05), _manifest(0.9, 0.05))
        assert not d.clean
        (flag,) = d.flagged
        assert flag.experiment == "e5"
        assert flag.column == "gamma_mean"
        assert "disjoint" in flag.detail
        assert "FLAGGED" in d.to_text()

    def test_touching_cis_overlap(self):
        # gap == ha + hb exactly: still overlapping, never flagged
        d = diff_manifests(_manifest(0.5, 0.1), _manifest(0.7, 0.1))
        assert d.clean

    def test_missing_halfwidth_never_flags(self):
        d = diff_manifests(_manifest(0.5, None), _manifest(0.9, None))
        assert d.clean
        assert any("no CI" in e.detail for e in d.informational)

    def test_missing_experiment_is_informational(self):
        a = _manifest(0.5, 0.1)
        b = _manifest(0.5, 0.1)
        b["experiments"] = {}
        d = diff_manifests(a, b)
        assert d.clean
        assert any(e.location == "experiments" for e in d.informational)

    def test_check_regression_is_informational(self):
        d = diff_manifests(_manifest(0.5, 0.1), _manifest(0.5, 0.1, checks=False))
        assert d.clean
        assert any(e.column == "checks" for e in d.informational)

    def test_table_digest_change_is_informational(self):
        a = _manifest(0.5, 0.1)
        b = _manifest(0.5, 0.1)
        b["experiments"]["e5"]["table_digest"] = "0000000000000000"
        d = diff_manifests(a, b)
        assert d.clean
        assert any(e.column == "table_digest" for e in d.informational)

    def test_to_dict_shape(self):
        d = diff_manifests(_manifest(0.5, 0.05), _manifest(0.9, 0.05))
        payload = d.to_dict()
        assert payload["clean"] is False
        assert len(payload["flagged"]) == 1
