"""Unit tests for interop builders (scipy sparse / networkx round trips)."""

import networkx as nx
import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import InvalidGraphError
from repro.graphs.build import (
    from_networkx,
    from_scipy_sparse,
    to_networkx,
    to_scipy_sparse,
)
from repro.graphs.generators import mesh, torus
from repro.graphs.graph import Graph


class TestScipyRoundTrip:
    def test_round_trip(self, small_torus):
        mat = to_scipy_sparse(small_torus)
        back = from_scipy_sparse(mat)
        assert back == small_torus

    def test_matrix_symmetric(self, small_mesh):
        mat = to_scipy_sparse(small_mesh)
        assert (mat != mat.T).nnz == 0

    def test_degree_from_matrix(self, small_mesh):
        mat = to_scipy_sparse(small_mesh)
        assert np.array_equal(np.asarray(mat.sum(axis=1)).ravel(),
                              small_mesh.degrees.astype(float))

    def test_diagonal_rejected(self):
        mat = sp.eye(3, format="csr")
        with pytest.raises(InvalidGraphError):
            from_scipy_sparse(mat)

    def test_non_square_rejected(self):
        mat = sp.csr_matrix(np.ones((2, 3)))
        with pytest.raises(InvalidGraphError):
            from_scipy_sparse(mat)

    def test_asymmetric_symmetrised(self):
        mat = sp.csr_matrix(np.array([[0, 1, 0], [0, 0, 0], [0, 0, 0]], dtype=float))
        g = from_scipy_sparse(mat)
        assert g.has_edge(0, 1) and g.has_edge(1, 0)


class TestNetworkxRoundTrip:
    def test_round_trip(self, small_mesh):
        back = from_networkx(to_networkx(small_mesh))
        assert back == small_mesh

    def test_node_count_preserved_with_isolates(self):
        g = nx.Graph()
        g.add_nodes_from(range(5))
        g.add_edge(0, 1)
        ours = from_networkx(g)
        assert ours.n == 5 and ours.m == 1

    def test_arbitrary_labels(self):
        g = nx.Graph()
        g.add_edge("b", "a")
        g.add_edge("a", "c")
        ours = from_networkx(g)
        assert ours.n == 3 and ours.m == 2

    def test_isomorphism_preserved(self):
        g = torus(4, 2)
        assert nx.is_isomorphic(to_networkx(g), to_networkx(from_networkx(to_networkx(g))))
