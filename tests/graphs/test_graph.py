"""Unit tests for the CSR Graph kernel."""

import numpy as np
import pytest

from repro.errors import InvalidGraphError
from repro.graphs.graph import Graph, neighbors_of_many


def triangle():
    return Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])


class TestConstruction:
    def test_from_edges_basic(self):
        g = triangle()
        assert g.n == 3
        assert g.m == 3
        assert np.array_equal(g.neighbors(0), [1, 2])

    def test_duplicate_edges_collapsed(self):
        g = Graph.from_edges(3, [(0, 1), (1, 0), (0, 1)])
        assert g.m == 1

    def test_self_loop_rejected(self):
        with pytest.raises(InvalidGraphError):
            Graph.from_edges(3, [(0, 0)])

    def test_out_of_range_rejected(self):
        with pytest.raises(InvalidGraphError):
            Graph.from_edges(3, [(0, 3)])
        with pytest.raises(InvalidGraphError):
            Graph.from_edges(3, [(-1, 0)])

    def test_bad_shape_rejected(self):
        with pytest.raises(InvalidGraphError):
            Graph.from_edges(3, np.array([[0, 1, 2]]))

    def test_non_integer_rejected(self):
        with pytest.raises(InvalidGraphError):
            Graph.from_edges(3, np.array([[0.5, 1.0]]))

    def test_empty_graph(self):
        g = Graph.empty(4)
        assert g.n == 4 and g.m == 0
        assert g.neighbors(0).size == 0

    def test_zero_nodes(self):
        g = Graph.empty(0)
        assert g.n == 0 and g.m == 0

    def test_negative_n_rejected(self):
        with pytest.raises(InvalidGraphError):
            Graph.from_edges(-1, [])

    def test_neighbour_lists_sorted(self):
        g = Graph.from_edges(5, [(4, 0), (2, 0), (3, 0), (1, 0)])
        assert np.array_equal(g.neighbors(0), [1, 2, 3, 4])


class TestProperties:
    def test_degrees(self):
        g = triangle()
        assert np.array_equal(g.degrees, [2, 2, 2])
        assert g.max_degree == 2 and g.min_degree == 2

    def test_degrees_star(self):
        g = Graph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        assert g.max_degree == 3 and g.min_degree == 1

    def test_has_edge(self):
        g = triangle()
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        g2 = Graph.from_edges(4, [(0, 1), (2, 3)])
        assert not g2.has_edge(0, 2)

    def test_edge_array_canonical(self):
        g = triangle()
        edges = g.edge_array()
        assert edges.shape == (3, 2)
        assert np.all(edges[:, 0] < edges[:, 1])

    def test_is_regular(self):
        assert triangle().is_regular()
        assert not Graph.from_edges(3, [(0, 1)]).is_regular()

    def test_equality_and_hash(self):
        a, b = triangle(), triangle()
        assert a == b
        assert hash(a) == hash(b)
        assert a != Graph.from_edges(3, [(0, 1)])

    def test_validate_roundtrip(self):
        triangle().validate()  # should not raise


class TestSubgraph:
    def test_induced_edges(self):
        g = Graph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
        sub = g.subgraph([0, 1, 2])
        assert sub.n == 3
        assert sub.m == 2  # edges (0,1),(1,2)

    def test_original_ids(self):
        g = Graph.from_edges(5, [(0, 1), (2, 3)])
        sub = g.subgraph([1, 3])
        assert np.array_equal(sub.original_ids, [1, 3])

    def test_original_ids_compose(self):
        g = Graph.from_edges(6, [(i, i + 1) for i in range(5)])
        sub1 = g.subgraph([1, 2, 3, 4])
        sub2 = sub1.subgraph([1, 2])  # local ids in sub1 => original 2, 3
        assert np.array_equal(sub2.original_ids, [2, 3])

    def test_without_nodes(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        h = g.without_nodes([1])
        assert h.n == 3
        assert h.m == 1  # only (2,3) survives
        assert np.array_equal(h.original_ids, [0, 2, 3])

    def test_subgraph_empty_selection(self):
        g = triangle()
        sub = g.subgraph([])
        assert sub.n == 0 and sub.m == 0

    def test_subgraph_valid_csr(self):
        g = Graph.from_edges(6, [(0, 1), (0, 2), (1, 2), (3, 4), (4, 5), (2, 3)])
        sub = g.subgraph([0, 2, 3, 5])
        sub.validate()

    def test_coords_carried(self):
        coords = np.arange(6).reshape(3, 2)
        g = Graph.from_edges(3, [(0, 1)], coords=coords)
        sub = g.subgraph([0, 2])
        assert np.array_equal(sub.coords, coords[[0, 2]])

    def test_renamed_shares_structure(self):
        g = triangle()
        h = g.renamed("tri")
        assert h.name == "tri"
        assert h == g


class TestNeighborsOfMany:
    def test_matches_manual_concat(self):
        g = Graph.from_edges(5, [(0, 1), (0, 2), (1, 3), (2, 4)])
        got = neighbors_of_many(g, np.array([0, 1]))
        expected = np.concatenate([g.neighbors(0), g.neighbors(1)])
        assert np.array_equal(got, expected)

    def test_empty_input(self):
        g = triangle()
        assert neighbors_of_many(g, np.array([], dtype=np.int64)).size == 0

    def test_isolated_nodes(self):
        g = Graph.empty(3)
        assert neighbors_of_many(g, np.array([0, 1, 2])).size == 0

    def test_multiplicity_preserved(self):
        g = triangle()
        got = neighbors_of_many(g, np.array([0, 1, 2]))
        assert got.shape[0] == 6  # 2 per node

    def test_csr_invalid_structures_rejected(self):
        with pytest.raises(InvalidGraphError):
            Graph(np.array([0, 1]), np.array([0]))  # self loop via indices
        with pytest.raises(InvalidGraphError):
            Graph(np.array([1, 2]), np.array([1, 0]))  # indptr[0] != 0
        with pytest.raises(InvalidGraphError):
            Graph(np.array([0, 2]), np.array([1]))  # indptr end mismatch
