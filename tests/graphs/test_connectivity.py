"""Unit tests for max-flow connectivity (networkx as the oracle)."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.graphs.build import to_networkx
from repro.graphs.connectivity import (
    edge_connectivity_between,
    global_node_connectivity,
    min_vertex_cut_between,
    node_connectivity_between,
)
from repro.graphs.generators import (
    barbell,
    complete_graph,
    cycle_graph,
    gnm_random,
    hypercube,
    mesh,
    path_graph,
    star_graph,
    torus,
)
from repro.graphs.graph import Graph
from repro.graphs.traversal import is_connected


class TestEdgeConnectivity:
    def test_cycle_two_disjoint_paths(self):
        g = cycle_graph(8)
        assert edge_connectivity_between(g, 0, 4) == 2

    def test_path_single(self):
        g = path_graph(6)
        assert edge_connectivity_between(g, 0, 5) == 1

    def test_disconnected_zero(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        assert edge_connectivity_between(g, 0, 2) == 0

    def test_hypercube_matches_degree(self):
        g = hypercube(4)
        # opposite corners of Q_d: d edge-disjoint paths
        assert edge_connectivity_between(g, 0, 15) == 4

    @pytest.mark.parametrize("seed", range(4))
    def test_oracle_random_graphs(self, seed):
        g = gnm_random(16, 30, seed=seed)
        nxg = to_networkx(g)
        rng = np.random.default_rng(seed)
        s, t = rng.choice(16, size=2, replace=False)
        ours = edge_connectivity_between(g, int(s), int(t))
        theirs = nx.edge_connectivity(nxg, int(s), int(t))
        assert ours == theirs

    def test_bad_endpoints(self, small_mesh):
        with pytest.raises(InvalidParameterError):
            edge_connectivity_between(small_mesh, 0, 0)
        with pytest.raises(InvalidParameterError):
            edge_connectivity_between(small_mesh, 0, 99)


class TestNodeConnectivity:
    def test_star_hub_cut(self):
        g = star_graph(5)
        assert node_connectivity_between(g, 1, 2) == 1

    def test_adjacent_pair_unseparable(self):
        g = cycle_graph(6)
        assert node_connectivity_between(g, 0, 1) == g.n

    def test_cycle_antipodal(self):
        g = cycle_graph(8)
        assert node_connectivity_between(g, 0, 4) == 2

    def test_barbell_bridge(self):
        g = barbell(5, 1)  # bridge node id 10
        assert node_connectivity_between(g, 0, 5) == 1

    @pytest.mark.parametrize("seed", range(4))
    def test_oracle_random_graphs(self, seed):
        g = gnm_random(14, 26, seed=100 + seed)
        nxg = to_networkx(g)
        rng = np.random.default_rng(seed)
        while True:
            s, t = rng.choice(14, size=2, replace=False)
            if not g.has_edge(int(s), int(t)):
                break
        ours = node_connectivity_between(g, int(s), int(t))
        theirs = nx.node_connectivity(nxg, int(s), int(t))
        assert ours == theirs


class TestMinVertexCut:
    def test_cut_size_matches_connectivity(self):
        g = mesh([4, 4])
        k = node_connectivity_between(g, 0, 15)
        cut = min_vertex_cut_between(g, 0, 15)
        assert cut.shape[0] == k

    def test_cut_disconnects(self):
        g = torus(5, 2)
        cut = min_vertex_cut_between(g, 0, 12)
        rest = g.without_nodes(cut)
        # s and t must end up in different components
        ids = rest.original_ids.tolist()
        from repro.graphs.traversal import bfs_distances

        s_local, t_local = ids.index(0), ids.index(12)
        assert bfs_distances(rest, s_local)[t_local] == -1

    def test_excludes_endpoints(self):
        g = mesh([3, 4])
        cut = min_vertex_cut_between(g, 0, 11)
        assert 0 not in cut.tolist() and 11 not in cut.tolist()

    def test_adjacent_rejected(self):
        g = cycle_graph(5)
        with pytest.raises(InvalidParameterError):
            min_vertex_cut_between(g, 0, 1)


class TestGlobalConnectivity:
    @pytest.mark.parametrize(
        "graph,expected",
        [
            (cycle_graph(7), 2),
            (path_graph(5), 1),
            (complete_graph(6), 5),
            (star_graph(5), 1),
            (barbell(4, 0), 1),
            (hypercube(3), 3),
        ],
    )
    def test_known_values(self, graph, expected):
        assert global_node_connectivity(graph) == expected

    def test_disconnected_zero(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        assert global_node_connectivity(g) == 0

    def test_tiny(self):
        assert global_node_connectivity(Graph.empty(1)) == 0

    @pytest.mark.parametrize("seed", range(3))
    def test_oracle_random(self, seed):
        g = gnm_random(12, 22, seed=200 + seed)
        if not is_connected(g):
            return
        assert global_node_connectivity(g) == nx.node_connectivity(to_networkx(g))

    def test_adversary_floor(self):
        """κ(G) is the adversary's disconnection floor: fewer faults can
        never disconnect the network (Menger)."""
        from repro.faults.adversary import separator_attack
        from repro.graphs.traversal import component_summary

        g = torus(6, 2)
        kappa = global_node_connectivity(g)
        assert kappa == 4
        sc = separator_attack(g, kappa - 1)
        assert component_summary(sc.surviving).n_components == 1


class TestGlobalEdgeConnectivity:
    @pytest.mark.parametrize(
        "graph,expected",
        [
            (cycle_graph(7), 2),
            (path_graph(5), 1),
            (complete_graph(6), 5),
            (hypercube(3), 3),
            (barbell(4, 0), 1),
            (torus(4, 2), 4),
        ],
    )
    def test_known_values(self, graph, expected):
        from repro.graphs.connectivity import global_edge_connectivity

        assert global_edge_connectivity(graph) == expected

    def test_disconnected_zero(self):
        from repro.graphs.connectivity import global_edge_connectivity

        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        assert global_edge_connectivity(g) == 0

    @pytest.mark.parametrize("seed", range(3))
    def test_oracle_random(self, seed):
        from repro.graphs.connectivity import global_edge_connectivity

        g = gnm_random(12, 24, seed=300 + seed)
        if not is_connected(g):
            return
        assert global_edge_connectivity(g) == nx.edge_connectivity(to_networkx(g))

    def test_whitney_inequalities(self):
        """Whitney: κ(G) ≤ λ(G) ≤ δ_min(G)."""
        from repro.graphs.connectivity import (
            global_edge_connectivity,
            global_node_connectivity,
        )

        for seed in range(3):
            g = gnm_random(10, 18, seed=400 + seed)
            if not is_connected(g):
                continue
            kappa = global_node_connectivity(g)
            lam = global_edge_connectivity(g)
            assert kappa <= lam <= g.min_degree
