"""Unit tests for topology generators: sizes, degrees, structure invariants."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.graphs.build import to_networkx
from repro.graphs.generators import (
    barbell,
    binary_tree,
    butterfly,
    can_overlay,
    chain_replacement,
    chordal_cycle,
    complete_bipartite,
    complete_graph,
    cycle_graph,
    debruijn,
    erdos_renyi,
    expander,
    gnm_random,
    hypercube,
    margulis_expander,
    mesh,
    path_graph,
    random_regular,
    ring_of_cliques,
    shuffle_exchange,
    splitter_network,
    star_graph,
    torus,
    wrapped_butterfly,
)
from repro.graphs.traversal import is_connected


class TestMeshTorus:
    def test_mesh_2d_counts(self):
        g = mesh([4, 5])
        assert g.n == 20
        assert g.m == 4 * 4 + 3 * 5  # vertical + horizontal... (rows x cols)

    def test_mesh_edge_count_formula(self):
        # d-dim mesh edges: sum over axes of (side_a - 1) * prod(other sides)
        g = mesh([3, 4, 5])
        expected = 2 * 4 * 5 + 3 * 3 * 5 + 3 * 4 * 4
        assert g.m == expected

    def test_mesh_degree_bounds(self):
        g = mesh([4, 4])
        assert g.min_degree == 2 and g.max_degree == 4

    def test_mesh_scalar_spec(self):
        assert mesh(3, 2).n == 9

    def test_mesh_scalar_needs_d(self):
        with pytest.raises(InvalidParameterError):
            mesh(3)

    def test_torus_regularity(self):
        g = torus(5, 3)
        assert g.is_regular()
        assert g.max_degree == 6

    def test_torus_edge_count(self):
        g = torus(5, 2)
        assert g.m == 2 * 25  # d * n for side > 2

    def test_torus_side2_no_duplicate_wrap(self):
        g = torus(2, 2)
        assert g.m == 4  # the 4-cycle, not doubled edges

    def test_mesh_coords_attached(self):
        g = mesh([3, 3])
        assert g.coords is not None and g.coords.shape == (9, 2)

    def test_connected(self):
        assert is_connected(mesh([4, 4, 3]))
        assert is_connected(torus(4, 3))

    def test_isomorphic_to_networkx_grid(self):
        ours = to_networkx(mesh([3, 4]))
        theirs = nx.grid_graph(dim=[4, 3])  # nx uses reversed dims
        assert nx.is_isomorphic(ours, theirs)

    def test_bad_sides(self):
        with pytest.raises(InvalidParameterError):
            mesh([0, 3])


class TestCanOverlay:
    def test_exact_power(self):
        g = can_overlay(27, 3, seed=0)
        assert g.n == 27
        assert g.is_regular()  # full torus

    def test_non_power_size(self):
        g = can_overlay(20, 2, seed=0)
        assert g.n == 20

    def test_bad_params(self):
        with pytest.raises(InvalidParameterError):
            can_overlay(0, 2)
        with pytest.raises(InvalidParameterError):
            can_overlay(5, 0)


class TestHypercube:
    def test_counts(self):
        g = hypercube(5)
        assert g.n == 32 and g.m == 5 * 16
        assert g.is_regular() and g.max_degree == 5

    def test_neighbors_hamming_one(self):
        g = hypercube(4)
        for v in [0, 7, 15]:
            for u in g.neighbors(v).tolist():
                assert bin(u ^ v).count("1") == 1

    def test_isomorphic_oracle(self):
        assert nx.is_isomorphic(to_networkx(hypercube(3)), nx.hypercube_graph(3))

    def test_degenerate(self):
        assert hypercube(0).n == 1

    def test_too_large_rejected(self):
        with pytest.raises(InvalidParameterError):
            hypercube(25)


class TestButterfly:
    def test_counts(self):
        g = butterfly(3)
        assert g.n == 4 * 8
        assert g.m == 2 * 3 * 8  # 2 edges per node per level transition

    def test_level_structure(self):
        g = butterfly(3)
        assert g.coords is not None
        levels = g.coords[:, 0]
        # edges only between consecutive levels
        for u, v in g.edge_array().tolist():
            assert abs(levels[u] - levels[v]) == 1

    def test_connected(self):
        assert is_connected(butterfly(4))

    def test_wrapped_butterfly_regular(self):
        g = wrapped_butterfly(3)
        assert g.n == 3 * 8
        assert is_connected(g)
        assert g.max_degree == 4

    def test_splitter_network_shape(self):
        g = splitter_network(4, 2, seed=1)
        assert g.n == 5 * 16
        assert is_connected(g)

    def test_bad_params(self):
        with pytest.raises(InvalidParameterError):
            butterfly(0)
        with pytest.raises(InvalidParameterError):
            wrapped_butterfly(1)
        with pytest.raises(InvalidParameterError):
            splitter_network(0)


class TestDeBruijnShuffle:
    def test_debruijn_counts(self):
        g = debruijn(4)
        assert g.n == 16
        assert g.max_degree <= 4
        assert is_connected(g)

    def test_shuffle_exchange_counts(self):
        g = shuffle_exchange(4)
        assert g.n == 16
        assert g.max_degree <= 3
        assert is_connected(g)

    def test_bad_order(self):
        with pytest.raises(InvalidParameterError):
            debruijn(0)
        with pytest.raises(InvalidParameterError):
            shuffle_exchange(0)


class TestRandomGraphs:
    def test_gnp_edge_probability(self):
        g = erdos_renyi(60, 0.2, seed=1)
        max_m = 60 * 59 // 2
        assert 0.1 * max_m < g.m < 0.3 * max_m

    def test_gnp_extremes(self):
        assert erdos_renyi(10, 0.0, seed=0).m == 0
        assert erdos_renyi(10, 1.0, seed=0).m == 45

    def test_gnm_exact_count(self):
        g = gnm_random(30, 100, seed=2)
        assert g.n == 30 and g.m == 100

    def test_gnm_full(self):
        g = gnm_random(8, 28, seed=0)
        assert g.m == 28

    def test_gnm_bad_m(self):
        with pytest.raises(InvalidParameterError):
            gnm_random(5, 11)

    def test_random_regular_is_regular(self):
        for d in (3, 4, 6):
            g = random_regular(50, d, seed=d)
            assert g.is_regular()
            assert g.max_degree == d

    def test_random_regular_many_seeds(self):
        # repair-based sampler must be reliable across seeds
        for s in range(30):
            g = random_regular(64, 4, seed=s)
            assert g.is_regular() and g.m == 128

    def test_random_regular_parity_rejected(self):
        with pytest.raises(InvalidParameterError):
            random_regular(5, 3)

    def test_random_regular_degree_bounds(self):
        with pytest.raises(InvalidParameterError):
            random_regular(4, 4)


class TestExpanders:
    def test_margulis_structure(self):
        g = margulis_expander(6)
        assert g.n == 36
        assert g.max_degree <= 8
        assert is_connected(g)

    def test_chordal_cycle_prime(self):
        g = chordal_cycle(13)
        assert g.n == 13
        assert g.max_degree <= 3
        assert is_connected(g)

    def test_chordal_rejects_composite(self):
        with pytest.raises(InvalidParameterError):
            chordal_cycle(15)

    def test_expander_wrapper(self):
        g = expander(40, 4, seed=0)
        assert g.is_regular()
        assert is_connected(g)

    def test_expander_odd_product_rounds_up(self):
        g = expander(41, 3, seed=0)
        assert (g.n * 3) % 2 == 0


class TestChains:
    def test_size_formula(self, small_expander):
        cr = chain_replacement(small_expander, 4)
        n, m = small_expander.n, small_expander.m
        assert cr.graph.n == n + 4 * m
        assert cr.graph.m == m * 5  # k+1 edges per chain

    def test_chain_degrees(self, small_expander):
        cr = chain_replacement(small_expander, 4)
        degs = cr.graph.degrees
        # chain nodes have degree 2; base nodes keep their base degree
        assert np.all(degs[cr.chain_nodes.ravel()] == 2)
        assert np.all(degs[: small_expander.n] == small_expander.degrees)

    def test_centers_disconnect_chains(self, small_expander):
        cr = chain_replacement(small_expander, 4)
        centers = cr.center_nodes
        assert centers.shape[0] == small_expander.m
        # each centre is a chain node
        assert np.all(np.isin(centers, cr.chain_nodes))

    def test_connected(self, small_expander):
        cr = chain_replacement(small_expander, 6)
        assert is_connected(cr.graph)

    def test_odd_k_rejected(self, small_expander):
        with pytest.raises(InvalidParameterError):
            chain_replacement(small_expander, 3)

    def test_edgeless_base_rejected(self):
        from repro.graphs.graph import Graph

        with pytest.raises(InvalidParameterError):
            chain_replacement(Graph.empty(5), 4)


class TestClassic:
    def test_complete(self):
        g = complete_graph(6)
        assert g.m == 15 and g.is_regular()

    def test_cycle_path_star(self):
        assert cycle_graph(5).m == 5
        assert path_graph(5).m == 4
        assert star_graph(4).m == 4

    def test_complete_bipartite(self):
        g = complete_bipartite(3, 4)
        assert g.n == 7 and g.m == 12

    def test_barbell(self):
        g = barbell(4, 2)
        assert g.n == 10
        assert is_connected(g)
        # bridge nodes have degree 2
        assert g.degrees[8] == 2 and g.degrees[9] == 2

    def test_ring_of_cliques(self):
        g = ring_of_cliques(4, 3)
        assert g.n == 12
        assert is_connected(g)
        assert g.m == 4 * 3 + 4  # cliques + ring edges

    def test_binary_tree(self):
        g = binary_tree(3)
        assert g.n == 15 and g.m == 14
        assert is_connected(g)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            cycle_graph(2)
        with pytest.raises(InvalidParameterError):
            ring_of_cliques(2, 3)
        with pytest.raises(InvalidParameterError):
            barbell(1)
