"""Unit tests for traversal (BFS, components) with a networkx oracle."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import InvalidParameterError, NotConnectedError
from repro.graphs.build import to_networkx
from repro.graphs.generators import barbell, cycle_graph, mesh, path_graph, torus
from repro.graphs.graph import Graph
from repro.graphs.traversal import (
    bfs_distances,
    bfs_tree,
    component_sizes,
    component_summary,
    connected_components,
    connected_components_unionfind,
    eccentricity,
    is_connected,
    is_subset_connected,
    largest_component,
    largest_component_fraction,
    pairwise_distupdate,
)


def two_components():
    return Graph.from_edges(6, [(0, 1), (1, 2), (3, 4)])


class TestBfsDistances:
    def test_path_distances(self):
        g = path_graph(5)
        d = bfs_distances(g, 0)
        assert np.array_equal(d, [0, 1, 2, 3, 4])

    def test_oracle_mesh(self):
        g = mesh([5, 5])
        d = bfs_distances(g, 0)
        oracle = nx.single_source_shortest_path_length(to_networkx(g), 0)
        for v, dist in oracle.items():
            assert d[v] == dist

    def test_multi_source(self):
        g = path_graph(7)
        d = bfs_distances(g, [0, 6])
        assert np.array_equal(d, [0, 1, 2, 3, 2, 1, 0])

    def test_unreachable_minus_one(self):
        d = bfs_distances(two_components(), 0)
        assert d[3] == -1 and d[5] == -1

    def test_empty_sources_rejected(self):
        with pytest.raises(InvalidParameterError):
            bfs_distances(path_graph(3), np.array([], dtype=np.int64))

    def test_bad_source_rejected(self):
        with pytest.raises(InvalidParameterError):
            bfs_distances(path_graph(3), 5)


class TestBfsTree:
    def test_parents_consistent_with_distances(self):
        g = mesh([4, 4])
        parent = bfs_tree(g, 0)
        dist = bfs_distances(g, 0)
        for v in range(1, g.n):
            assert dist[parent[v]] == dist[v] - 1

    def test_root_self_parent(self):
        assert bfs_tree(path_graph(3), 1)[1] == 1

    def test_unreachable_marked(self):
        parent = bfs_tree(two_components(), 0)
        assert parent[4] == -1

    def test_bad_root(self):
        with pytest.raises(InvalidParameterError):
            bfs_tree(path_graph(3), -1)


class TestComponents:
    def test_single_component(self, small_torus):
        labels = connected_components(small_torus)
        assert labels.max() == 0

    def test_two_components(self):
        labels = connected_components(two_components())
        assert labels.max() == 2  # {0,1,2}, {3,4}, and isolated {5}
        assert labels[0] == labels[2]
        assert labels[3] == labels[4]
        assert labels[0] != labels[3]
        assert labels[5] not in (labels[0],)

    def test_isolated_nodes_counted(self):
        g = Graph.empty(3)
        labels = connected_components(g)
        assert set(labels.tolist()) == {0, 1, 2}

    def test_bfs_matches_unionfind(self):
        g = two_components()
        a = connected_components(g)
        b = connected_components_unionfind(g)
        # same partition (labels may differ) — compare co-membership
        for i in range(g.n):
            for j in range(g.n):
                assert (a[i] == a[j]) == (b[i] == b[j])

    def test_oracle_random_graph(self):
        rng = np.random.default_rng(5)
        edges = rng.integers(0, 30, size=(40, 2))
        edges = edges[edges[:, 0] != edges[:, 1]]
        g = Graph.from_edges(30, edges)
        ours = component_sizes(connected_components(g))
        theirs = sorted(
            (len(c) for c in nx.connected_components(to_networkx(g))), reverse=True
        )
        assert sorted(ours.tolist(), reverse=True) == theirs

    def test_component_sizes_sum(self):
        labels = connected_components(two_components())
        assert component_sizes(labels).sum() == 6


class TestLargestComponent:
    def test_fraction(self):
        assert largest_component_fraction(two_components()) == pytest.approx(0.5)

    def test_ids_sorted_and_correct(self):
        lc = largest_component(two_components())
        assert np.array_equal(lc, [0, 1, 2])

    def test_connected_graph_full(self, small_mesh):
        assert largest_component(small_mesh).shape[0] == small_mesh.n

    def test_empty_graph(self):
        assert largest_component_fraction(Graph.empty(0)) == 0.0


class TestConnectivityChecks:
    def test_is_connected(self, small_torus):
        assert is_connected(small_torus)
        assert not is_connected(two_components())
        assert is_connected(Graph.empty(1))

    def test_subset_connected(self):
        g = cycle_graph(8)
        assert is_subset_connected(g, np.array([0, 1, 2]))
        assert not is_subset_connected(g, np.array([0, 2]))
        assert is_subset_connected(g, np.array([5]))
        assert is_subset_connected(g, np.array([], dtype=np.int64))

    def test_subset_connected_mask_input(self):
        g = cycle_graph(6)
        mask = np.zeros(6, dtype=bool)
        mask[[1, 2, 3]] = True
        assert is_subset_connected(g, mask)

    def test_eccentricity(self):
        assert eccentricity(path_graph(5), 0) == 4
        assert eccentricity(path_graph(5), 2) == 2

    def test_eccentricity_disconnected(self):
        with pytest.raises(NotConnectedError):
            eccentricity(two_components(), 0)


class TestPairwiseDist:
    def test_grouped_queries(self):
        g = mesh([4, 4])
        pairs = np.array([[0, 15], [0, 3], [5, 10], [5, 0]])
        d = pairwise_distupdate(g, pairs)
        assert d[0] == 6 and d[1] == 3
        oracle = nx.shortest_path_length(to_networkx(g), 5, 10)
        assert d[2] == oracle

    def test_unreachable(self):
        d = pairwise_distupdate(two_components(), np.array([[0, 4]]))
        assert d[0] == -1

    def test_bad_shape(self):
        with pytest.raises(InvalidParameterError):
            pairwise_distupdate(path_graph(3), np.array([0, 1]))


class TestComponentSummary:
    def test_summary_fields(self):
        s = component_summary(two_components())
        assert s.n_components == 3
        assert s.largest_size == 3
        assert s.largest_fraction == pytest.approx(0.5)
        assert np.array_equal(s.sizes, [3, 2, 1])

    def test_sublinear_check(self):
        s = component_summary(two_components())
        assert s.sublinear_against(6, threshold=0.9)
        assert not s.sublinear_against(6, threshold=0.4)

    def test_barbell_connected(self):
        s = component_summary(barbell(5, 2))
        assert s.n_components == 1
        assert s.largest_fraction == 1.0
