"""Unit tests for boundary operators, cross-checked against brute force."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.graphs.generators import cycle_graph, mesh, torus
from repro.graphs.graph import Graph
from repro.graphs.ops import (
    as_indices,
    as_mask,
    closed_neighborhood,
    edge_boundary,
    edge_boundary_count,
    edge_expansion_of_set,
    node_boundary,
    node_boundary_size,
    node_expansion_of_set,
    volume,
)


def brute_node_boundary(g: Graph, s: set) -> set:
    out = set()
    for v in s:
        for u in g.neighbors(v).tolist():
            if u not in s:
                out.add(u)
    return out


def brute_edge_boundary(g: Graph, s: set) -> int:
    count = 0
    for u, v in g.edge_array().tolist():
        if (u in s) != (v in s):
            count += 1
    return count


class TestCanonicalisation:
    def test_as_mask_from_indices(self, small_mesh):
        mask = as_mask(small_mesh, [0, 5])
        assert mask.sum() == 2 and mask[0] and mask[5]

    def test_as_mask_passthrough(self, small_mesh):
        m = np.zeros(small_mesh.n, dtype=bool)
        m[3] = True
        assert np.array_equal(as_mask(small_mesh, m), m)

    def test_as_mask_wrong_shape(self, small_mesh):
        with pytest.raises(InvalidParameterError):
            as_mask(small_mesh, np.zeros(3, dtype=bool))

    def test_as_indices_from_mask(self, small_mesh):
        m = np.zeros(small_mesh.n, dtype=bool)
        m[[2, 7]] = True
        assert np.array_equal(as_indices(small_mesh, m), [2, 7])

    def test_as_indices_dedupes(self, small_mesh):
        assert np.array_equal(as_indices(small_mesh, [3, 3, 1]), [1, 3])

    def test_out_of_range(self, small_mesh):
        with pytest.raises(InvalidParameterError):
            as_indices(small_mesh, [small_mesh.n])


class TestNodeBoundary:
    @pytest.mark.parametrize("subset", [[0], [0, 1], [0, 1, 4, 5], [5, 6, 9, 10]])
    def test_matches_bruteforce_mesh(self, subset):
        g = mesh([4, 4])
        got = set(node_boundary(g, subset).tolist())
        assert got == brute_node_boundary(g, set(subset))

    def test_whole_graph_empty_boundary(self, small_cycle):
        assert node_boundary(small_cycle, list(range(small_cycle.n))).size == 0

    def test_size_helper(self, small_mesh):
        s = [0, 1, 4]
        assert node_boundary_size(small_mesh, s) == len(
            brute_node_boundary(small_mesh, set(s))
        )

    def test_empty_set(self, small_mesh):
        assert node_boundary(small_mesh, []).size == 0

    def test_boundary_excludes_set(self, small_torus):
        s = [0, 1, 2]
        b = node_boundary(small_torus, s)
        assert not np.intersect1d(b, s).size


class TestEdgeBoundary:
    @pytest.mark.parametrize("subset", [[0], [0, 1, 2, 3], [0, 4, 8, 12]])
    def test_count_matches_bruteforce(self, subset):
        g = mesh([4, 4])
        assert edge_boundary_count(g, subset) == brute_edge_boundary(g, set(subset))

    def test_edges_oriented_from_set(self, small_mesh):
        s = [0, 1]
        eb = edge_boundary(small_mesh, s)
        assert np.all(np.isin(eb[:, 0], s))
        assert not np.any(np.isin(eb[:, 1], s))

    def test_count_equals_edge_list_len(self, small_torus):
        s = list(range(8))
        assert edge_boundary(small_torus, s).shape[0] == edge_boundary_count(
            small_torus, s
        )

    def test_complement_symmetry(self, small_mesh):
        s = [0, 1, 4, 5]
        comp = sorted(set(range(small_mesh.n)) - set(s))
        assert edge_boundary_count(small_mesh, s) == edge_boundary_count(small_mesh, comp)


class TestExpansionOfSet:
    def test_cycle_arc(self):
        g = cycle_graph(10)
        # an arc of 3 nodes has 2 boundary nodes and 2 crossing edges
        assert node_expansion_of_set(g, [0, 1, 2]) == pytest.approx(2 / 3)
        assert edge_expansion_of_set(g, [0, 1, 2]) == pytest.approx(2 / 3)

    def test_edge_expansion_uses_min_side(self):
        g = cycle_graph(10)
        arc7 = list(range(7))
        # min(|S|, n-|S|) = 3
        assert edge_expansion_of_set(g, arc7) == pytest.approx(2 / 3)

    def test_empty_set_rejected(self, small_mesh):
        with pytest.raises(InvalidParameterError):
            node_expansion_of_set(small_mesh, [])

    def test_full_set_rejected_for_edge(self, small_mesh):
        with pytest.raises(InvalidParameterError):
            edge_expansion_of_set(small_mesh, list(range(small_mesh.n)))

    def test_torus_band(self):
        g = torus(6, 2)
        band = [i for i in range(g.n) if i // 6 < 3]  # half the rows
        # boundary = 2 rows of 6 (one on each side); |S| = 18
        assert node_expansion_of_set(g, band) == pytest.approx(12 / 18)


class TestVolumeAndClosure:
    def test_volume(self, small_mesh):
        s = [0, 5]
        assert volume(small_mesh, s) == int(small_mesh.degrees[[0, 5]].sum())

    def test_closed_neighborhood(self, small_mesh):
        s = [5]
        cn = closed_neighborhood(small_mesh, s)
        assert 5 in cn.tolist()
        assert set(cn.tolist()) == {5} | set(small_mesh.neighbors(5).tolist())
