"""Unit tests for spectral sweep cuts: difference arrays vs brute force."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.expansion.exact import edge_expansion_exact, node_expansion_exact
from repro.expansion.sweep import (
    best_edge_sweep_cut,
    best_node_sweep_cut,
    fiedler_order,
    sweep_cuts_edge,
    sweep_cuts_node,
)
from repro.graphs.generators import cycle_graph, mesh, torus
from repro.graphs.ops import edge_boundary_count, node_boundary_size


class TestSweepArrays:
    def test_edge_cut_sizes_match_bruteforce(self, small_mesh):
        order = fiedler_order(small_mesh)
        _, cuts = sweep_cuts_edge(small_mesh, order)
        for t in range(small_mesh.n - 1):
            prefix = order[: t + 1]
            assert cuts[t] == edge_boundary_count(small_mesh, prefix)

    def test_node_boundaries_match_bruteforce(self, small_mesh):
        order = fiedler_order(small_mesh)
        _, pre, suf = sweep_cuts_node(small_mesh, order)
        n = small_mesh.n
        for t in range(n - 1):
            prefix = order[: t + 1]
            suffix = order[t + 1:]
            assert pre[t] == node_boundary_size(small_mesh, prefix)
            assert suf[t] == node_boundary_size(small_mesh, suffix)

    def test_arbitrary_order_supported(self, small_torus):
        order = np.arange(small_torus.n)[::-1].copy()
        _, cuts = sweep_cuts_edge(small_torus, order)
        assert cuts.shape == (small_torus.n - 1,)
        for t in (0, 10, 30):
            assert cuts[t] == edge_boundary_count(small_torus, order[: t + 1])

    def test_bad_order_rejected(self, small_mesh):
        with pytest.raises(InvalidParameterError):
            sweep_cuts_edge(small_mesh, np.arange(3))


class TestBestCuts:
    def test_best_cut_is_upper_bound_on_exact(self):
        g = mesh([3, 4])
        exact = node_expansion_exact(g).value
        sweep = best_node_sweep_cut(g)
        assert sweep.ratio >= exact - 1e-12

    def test_best_edge_cut_is_upper_bound(self):
        g = mesh([3, 4])
        exact = edge_expansion_exact(g).value
        sweep = best_edge_sweep_cut(g)
        assert sweep.ratio >= exact - 1e-12

    def test_cycle_sweep_finds_optimum(self):
        # The Fiedler order of a cycle is a rotation sweep; arcs are optimal
        g = cycle_graph(16)
        cut = best_edge_sweep_cut(g)
        assert cut.ratio == pytest.approx(2 / 8)

    def test_cut_respects_half_size(self, small_torus):
        cut = best_node_sweep_cut(small_torus)
        assert 1 <= cut.nodes.size <= small_torus.n // 2

    def test_ratio_matches_nodes(self, small_torus):
        cut = best_node_sweep_cut(small_torus)
        assert cut.ratio == pytest.approx(
            node_boundary_size(small_torus, cut.nodes) / cut.nodes.size
        )

    def test_edge_ratio_matches_nodes(self, small_torus):
        cut = best_edge_sweep_cut(small_torus)
        denom = min(cut.nodes.size, small_torus.n - cut.nodes.size)
        assert cut.ratio == pytest.approx(
            edge_boundary_count(small_torus, cut.nodes) / denom
        )
