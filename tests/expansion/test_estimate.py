"""Unit tests for the two-sided expansion estimate facade and refinement."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.expansion.estimate import (
    ExpansionEstimate,
    estimate_edge_expansion,
    estimate_node_expansion,
)
from repro.expansion.exact import edge_expansion_exact, node_expansion_exact
from repro.expansion.local import refine_cut
from repro.expansion.profiles import bfs_ball, expansion_profile
from repro.graphs.generators import barbell, cycle_graph, mesh, torus
from repro.graphs.graph import Graph
from repro.graphs.ops import node_boundary_size, node_expansion_of_set


class TestEstimateNode:
    def test_small_graph_exact(self):
        g = cycle_graph(10)
        est = estimate_node_expansion(g)
        assert est.exact
        assert est.lower == est.upper == pytest.approx(2 / 5)

    def test_large_graph_bracket(self):
        g = torus(8, 2)
        est = estimate_node_expansion(g, exact_threshold=14)
        assert not est.exact
        assert 0 < est.lower <= est.upper

    def test_upper_is_constructive(self):
        g = torus(8, 2)
        est = estimate_node_expansion(g)
        achieved = node_expansion_of_set(g, est.witness)
        assert achieved == pytest.approx(est.upper)

    def test_disconnected_zero(self):
        g = Graph.from_edges(6, [(0, 1), (2, 3), (4, 5)])
        est = estimate_node_expansion(g)
        assert est.value == 0.0 and est.exact

    def test_value_is_upper(self, small_torus):
        est = estimate_node_expansion(small_torus)
        assert est.value == est.upper

    def test_tiny_rejected(self):
        with pytest.raises(InvalidParameterError):
            estimate_node_expansion(Graph.empty(1))

    def test_inconsistent_estimate_rejected(self):
        with pytest.raises(InvalidParameterError):
            ExpansionEstimate("node", lower=1.0, upper=0.5,
                              witness=np.array([0]), exact=False, method="x")


class TestEstimateEdge:
    def test_small_graph_exact(self):
        g = cycle_graph(12)
        est = estimate_edge_expansion(g)
        assert est.exact
        assert est.value == pytest.approx(2 / 6)

    def test_large_graph_bracket_valid(self):
        g = torus(8, 2)
        est = estimate_edge_expansion(g)
        # true alpha_e of 8x8 torus is 4*8/32 = 1.0? cut a band: 16 edges/32
        assert est.lower <= est.upper
        assert est.upper <= 2.0

    def test_barbell_finds_bottleneck(self):
        g = barbell(8, 0)
        est = estimate_edge_expansion(g, exact_threshold=4)
        # bridge cut: 1 edge / 8 nodes
        assert est.upper == pytest.approx(1 / 8)


class TestRefineCut:
    def test_never_worse(self, small_torus):
        seed = np.arange(10)
        before = node_expansion_of_set(small_torus, seed)
        refined = refine_cut(small_torus, seed, "node")
        after = node_expansion_of_set(small_torus, refined)
        assert after <= before + 1e-12

    def test_respects_half_constraint(self, small_torus):
        refined = refine_cut(small_torus, np.arange(small_torus.n // 2), "node")
        assert refined.size <= small_torus.n // 2

    def test_mask_input(self, small_mesh):
        mask = np.zeros(small_mesh.n, dtype=bool)
        mask[[0, 1]] = True
        refined = refine_cut(small_mesh, mask, "edge")
        assert refined.size >= 1

    def test_empty_seed_rejected(self, small_mesh):
        with pytest.raises(InvalidParameterError):
            refine_cut(small_mesh, np.array([], dtype=np.int64))

    def test_bad_kind_rejected(self, small_mesh):
        with pytest.raises(InvalidParameterError):
            refine_cut(small_mesh, np.array([0]), "vertex")  # type: ignore[arg-type]

    def test_move_budget_respected(self, small_torus):
        refined = refine_cut(small_torus, np.arange(8), "node", max_moves=0)
        assert np.array_equal(refined, np.arange(8))


class TestProfiles:
    def test_bfs_ball_size(self, small_torus):
        ball = bfs_ball(small_torus, 0, 10)
        assert ball.size == 10
        assert 0 in ball.tolist()

    def test_bfs_ball_connected(self, small_torus):
        from repro.graphs.traversal import is_subset_connected

        ball = bfs_ball(small_torus, 5, 17)
        assert is_subset_connected(small_torus, ball)

    def test_bfs_ball_component_capped(self):
        g = Graph.from_edges(6, [(0, 1), (1, 2), (3, 4)])
        ball = bfs_ball(g, 0, 10)
        assert ball.size == 3  # can't leave the component

    def test_mesh_profile_exponent(self):
        g = torus(16, 2)
        prof = expansion_profile(g, seed=0, samples_per_size=2)
        # 2-D mesh family: alpha(m) ~ m^{-1/2}
        assert -0.9 < prof.exponent < -0.2
        assert prof.is_uniform(slack=10.0)

    def test_profile_prediction_positive(self):
        g = torus(12, 2)
        prof = expansion_profile(g, seed=1, samples_per_size=2)
        assert prof.predicted(100.0) > 0

    def test_too_small_rejected(self):
        with pytest.raises(InvalidParameterError):
            expansion_profile(cycle_graph(8))
