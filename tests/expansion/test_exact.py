"""Unit tests for exhaustive expansion computation against known values."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.expansion.exact import (
    EXACT_MAX_NODES,
    edge_expansion_exact,
    node_expansion_exact,
)
from repro.graphs.build import to_networkx
from repro.graphs.generators import (
    barbell,
    complete_graph,
    cycle_graph,
    hypercube,
    mesh,
    path_graph,
    star_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.ops import edge_boundary_count, node_boundary_size


class TestNodeExpansionKnown:
    def test_cycle(self):
        # best set: arc of n/2 nodes, boundary 2
        g = cycle_graph(12)
        res = node_expansion_exact(g)
        assert res.value == pytest.approx(2 / 6)

    def test_complete(self):
        # K_n: any S has boundary n - |S|; min over |S| <= n/2 is at |S| = n/2
        g = complete_graph(8)
        res = node_expansion_exact(g)
        assert res.value == pytest.approx(4 / 4)

    def test_path(self):
        # P_n: take a half-line from one end, boundary 1
        g = path_graph(8)
        res = node_expansion_exact(g)
        assert res.value == pytest.approx(1 / 4)

    def test_star_leaves(self):
        # leaves other than the hub: boundary is just the hub
        g = star_graph(7)  # 8 nodes
        res = node_expansion_exact(g)
        assert res.value == pytest.approx(1 / 4)

    def test_hypercube_q3(self):
        # Q_3: by Harper's vertex-isoperimetry the Hamming ball {0,1,2,4}
        # is optimal — boundary {3,5,6}, so alpha = 3/4 (not the subcube's 1)
        res = node_expansion_exact(hypercube(3))
        assert res.value == pytest.approx(3 / 4)

    def test_disconnected_zero(self):
        g = Graph.from_edges(6, [(0, 1), (2, 3), (4, 5)])
        res = node_expansion_exact(g)
        assert res.value == 0.0

    def test_witness_achieves_value(self):
        g = mesh([3, 4])
        res = node_expansion_exact(g)
        assert res.witness.size >= 1
        achieved = node_boundary_size(g, res.witness) / res.witness.size
        assert achieved == pytest.approx(res.value)

    def test_witness_at_most_half(self):
        g = mesh([3, 4])
        res = node_expansion_exact(g)
        assert 2 * res.witness.size <= g.n


class TestEdgeExpansionKnown:
    def test_cycle(self):
        g = cycle_graph(10)
        res = edge_expansion_exact(g)
        assert res.value == pytest.approx(2 / 5)

    def test_complete(self):
        # K_n: cut(S) = |S|(n-|S|), denominator min side -> min at half: n/2
        g = complete_graph(8)
        res = edge_expansion_exact(g)
        assert res.value == pytest.approx(4.0)

    def test_hypercube_dimension_cut(self):
        # Q_d edge expansion = 1 (dimension bisection)
        res = edge_expansion_exact(hypercube(3))
        assert res.value == pytest.approx(1.0)

    def test_barbell_bridge(self):
        g = barbell(5, 0)  # two K5 joined by one edge
        res = edge_expansion_exact(g)
        assert res.value == pytest.approx(1 / 5)

    def test_witness_achieves_value(self):
        g = mesh([3, 4])
        res = edge_expansion_exact(g)
        size = res.witness.size
        achieved = edge_boundary_count(g, res.witness) / min(size, g.n - size)
        assert achieved == pytest.approx(res.value)

    def test_oracle_small_random(self):
        rng = np.random.default_rng(3)
        edges = rng.integers(0, 10, size=(20, 2))
        edges = edges[edges[:, 0] != edges[:, 1]]
        g = Graph.from_edges(10, edges)
        ours = edge_expansion_exact(g).value
        # brute force oracle via itertools
        from itertools import combinations

        best = float("inf")
        for r in range(1, 6):
            for s in combinations(range(10), r):
                cut = edge_boundary_count(g, list(s))
                best = min(best, cut / min(r, 10 - r))
        assert ours == pytest.approx(best)


class TestLimits:
    def test_too_large_rejected(self):
        g = mesh([5, 4])  # 20 nodes > default 16
        with pytest.raises(InvalidParameterError):
            node_expansion_exact(g)

    def test_cap_enforced(self):
        g = mesh([3, 3])
        with pytest.raises(InvalidParameterError):
            node_expansion_exact(g, max_nodes=EXACT_MAX_NODES + 5)

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            node_expansion_exact(Graph.empty(0))

    def test_singleton_node_expansion(self):
        res = node_expansion_exact(Graph.empty(1))
        assert res.value == 0.0

    def test_singleton_edge_rejected(self):
        with pytest.raises(InvalidParameterError):
            edge_expansion_exact(Graph.empty(1))

    def test_bad_kind_guard(self):
        from repro.expansion.exact import ExactExpansionResult

        with pytest.raises(InvalidParameterError):
            ExactExpansionResult(1.0, np.array([0]), "both")
