"""Unit tests for fault models: scenario record, random and adversarial."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.faults.adversary import (
    degree_attack,
    greedy_boundary_attack,
    random_attack,
    separator_attack,
)
from repro.faults.attacks_chain import chain_center_attack
from repro.faults.attacks_mesh import axis_cut_attack, recursive_bisection_attack
from repro.faults.model import FaultScenario, apply_node_faults
from repro.faults.random_faults import (
    random_edge_faults,
    random_node_faults,
    sample_fault_mask,
)
from repro.graphs.generators import chain_replacement, expander, mesh, star_graph, torus
from repro.graphs.traversal import component_summary


class TestScenario:
    def test_apply_faults_counts(self, small_torus):
        sc = apply_node_faults(small_torus, np.array([0, 5, 9]))
        assert sc.f == 3
        assert sc.surviving.n == small_torus.n - 3
        assert sc.fault_fraction == pytest.approx(3 / small_torus.n)

    def test_surviving_nodes_complement(self, small_torus):
        faults = np.array([1, 2])
        sc = apply_node_faults(small_torus, faults)
        assert not np.intersect1d(sc.surviving_nodes, faults).size
        assert sc.surviving_nodes.size + sc.f == small_torus.n

    def test_original_ids_resolve(self, small_torus):
        sc = apply_node_faults(small_torus, np.array([0]))
        assert np.array_equal(sc.surviving.original_ids, np.arange(1, small_torus.n))

    def test_empty_faults(self, small_mesh):
        sc = apply_node_faults(small_mesh, np.array([], dtype=np.int64))
        assert sc.f == 0 and sc.surviving.n == small_mesh.n

    def test_inconsistent_scenario_rejected(self, small_mesh):
        with pytest.raises(InvalidParameterError):
            FaultScenario(
                original=small_mesh,
                surviving=small_mesh,
                faulty_nodes=np.array([0]),
            )


class TestRandomFaults:
    def test_zero_p_no_faults(self, small_torus):
        sc = random_node_faults(small_torus, 0.0, seed=0)
        assert sc.f == 0

    def test_one_p_all_faults(self, small_torus):
        sc = random_node_faults(small_torus, 1.0, seed=0)
        assert sc.f == small_torus.n

    def test_fault_rate_reasonable(self):
        g = torus(20, 2)
        sc = random_node_faults(g, 0.3, seed=1)
        assert 0.2 < sc.fault_fraction < 0.4

    def test_deterministic_seed(self, small_torus):
        a = random_node_faults(small_torus, 0.5, seed=42)
        b = random_node_faults(small_torus, 0.5, seed=42)
        assert np.array_equal(a.faulty_nodes, b.faulty_nodes)

    def test_protected_respected(self, small_torus):
        protected = np.arange(10)
        mask = sample_fault_mask(small_torus.n, 0.9, seed=2, protected=protected)
        assert not mask[:10].any()

    def test_bad_p_rejected(self, small_torus):
        with pytest.raises(InvalidParameterError):
            random_node_faults(small_torus, 1.5)

    def test_edge_faults_keep_nodes(self, small_torus):
        g = random_edge_faults(small_torus, 0.5, seed=3)
        assert g.n == small_torus.n
        assert g.m < small_torus.m

    def test_edge_faults_extremes(self, small_torus):
        assert random_edge_faults(small_torus, 0.0, seed=0).m == small_torus.m
        assert random_edge_faults(small_torus, 1.0, seed=0).m == 0


class TestAdversaries:
    def test_budget_exact(self, small_torus):
        for attack in (degree_attack, lambda g, b: random_attack(g, b, seed=0)):
            sc = attack(small_torus, 5)
            assert sc.f == 5

    def test_budget_capped_at_n(self, small_mesh):
        sc = degree_attack(small_mesh, small_mesh.n + 10)
        assert sc.f == small_mesh.n

    def test_zero_budget(self, small_mesh):
        sc = separator_attack(small_mesh, 0)
        assert sc.f == 0

    def test_degree_attack_targets_hubs(self):
        g = star_graph(6)
        sc = degree_attack(g, 1)
        assert sc.faulty_nodes[0] == 0  # the hub

    def test_separator_attack_damages_more_than_random(self):
        g = torus(12, 2)
        budget = 24
        adv = separator_attack(g, budget)
        rnd = random_attack(g, budget, seed=0)
        adv_frac = component_summary(adv.surviving).largest_fraction
        rnd_frac = component_summary(rnd.surviving).largest_fraction
        assert adv_frac <= rnd_frac + 0.05

    def test_separator_attack_respects_budget(self, small_torus):
        sc = separator_attack(small_torus, 7)
        assert sc.f <= 7

    def test_greedy_attack_runs(self, small_mesh):
        sc = greedy_boundary_attack(small_mesh, 3, seed=1)
        assert sc.f == 3

    def test_negative_budget_rejected(self, small_mesh):
        with pytest.raises(InvalidParameterError):
            degree_attack(small_mesh, -1)


class TestChainAttack:
    def test_full_attack_removes_all_centers(self, small_expander):
        cr = chain_replacement(small_expander, 4)
        sc = chain_center_attack(cr)
        assert sc.f == cr.base.m
        assert np.array_equal(sc.faulty_nodes, np.sort(cr.center_nodes))

    def test_component_bound_holds(self, small_expander):
        cr = chain_replacement(small_expander, 4)
        sc = chain_center_attack(cr)
        summary = component_summary(sc.surviving)
        assert summary.largest_size <= cr.expected_component_size_after_center_attack()

    def test_partial_fraction(self, small_expander):
        cr = chain_replacement(small_expander, 4)
        sc = chain_center_attack(cr, fraction=0.5, seed=0)
        assert sc.f == round(0.5 * cr.base.m)

    def test_zero_fraction(self, small_expander):
        cr = chain_replacement(small_expander, 4)
        assert chain_center_attack(cr, fraction=0.0).f == 0

    def test_bad_fraction(self, small_expander):
        cr = chain_replacement(small_expander, 4)
        with pytest.raises(InvalidParameterError):
            chain_center_attack(cr, fraction=1.5)


class TestMeshAttacks:
    def test_recursive_bisection_shatters(self):
        g = torus(10, 2)
        eps = 0.25
        sc = recursive_bisection_attack(g, eps)
        summary = component_summary(sc.surviving)
        assert summary.largest_size < eps * g.n + 1

    def test_recursive_bisection_bad_eps(self, small_torus):
        with pytest.raises(InvalidParameterError):
            recursive_bisection_attack(small_torus, 1.5)

    def test_axis_attack_shatters(self):
        g = torus(12, 2)
        eps = 0.25
        sc = axis_cut_attack(g, eps)
        summary = component_summary(sc.surviving)
        assert summary.largest_size <= eps * g.n + 1e-9

    def test_axis_attack_mesh_too(self):
        g = mesh([12, 12])
        sc = axis_cut_attack(g, 0.25)
        summary = component_summary(sc.surviving)
        assert summary.largest_size <= 0.25 * g.n + 1e-9

    def test_axis_attack_needs_coords(self, small_expander):
        with pytest.raises(InvalidParameterError):
            axis_cut_attack(small_expander, 0.25)
