"""Unit tests for the array-backed union-find."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.util.unionfind import UnionFind


class TestConstruction:
    def test_initial_state(self):
        uf = UnionFind(5)
        assert len(uf) == 5
        assert uf.n_sets == 5
        assert uf.max_size == 1

    def test_empty(self):
        uf = UnionFind(0)
        assert len(uf) == 0
        assert uf.n_sets == 0
        assert uf.max_size == 0

    def test_negative_size_rejected(self):
        with pytest.raises(InvalidParameterError):
            UnionFind(-1)


class TestUnionFind:
    def test_union_returns_true_on_merge(self):
        uf = UnionFind(4)
        assert uf.union(0, 1) is True
        assert uf.union(0, 1) is False

    def test_find_idempotent(self):
        uf = UnionFind(4)
        uf.union(1, 2)
        r = uf.find(1)
        assert uf.find(2) == r
        assert uf.find(r) == r

    def test_connected(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        uf.union(2, 3)
        assert uf.connected(0, 1)
        assert not uf.connected(1, 2)
        uf.union(1, 2)
        assert uf.connected(0, 3)

    def test_n_sets_decrements(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(2, 3)
        assert uf.n_sets == 3
        uf.union(0, 2)
        assert uf.n_sets == 2

    def test_set_size(self):
        uf = UnionFind(6)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.set_size(0) == 3
        assert uf.set_size(2) == 3
        assert uf.set_size(5) == 1

    def test_max_size_tracking(self):
        uf = UnionFind(6)
        assert uf.max_size == 1
        uf.union(0, 1)
        assert uf.max_size == 2
        uf.union(2, 3)
        assert uf.max_size == 2
        uf.union(0, 2)
        assert uf.max_size == 4

    def test_union_by_size_keeps_depth_small(self):
        # chain of unions should still find quickly (no recursion error)
        n = 10000
        uf = UnionFind(n)
        for i in range(n - 1):
            uf.union(i, i + 1)
        assert uf.n_sets == 1
        assert uf.set_size(0) == n


class TestBatchOps:
    def test_union_edges_count(self):
        uf = UnionFind(5)
        u = np.array([0, 1, 2, 0])
        v = np.array([1, 2, 3, 3])
        merges = uf.union_edges(u, v)
        assert merges == 3  # the last edge is redundant
        assert uf.n_sets == 2

    def test_union_edges_shape_mismatch(self):
        uf = UnionFind(5)
        with pytest.raises(InvalidParameterError):
            uf.union_edges(np.array([0]), np.array([1, 2]))

    def test_labels_dense_and_consistent(self):
        uf = UnionFind(6)
        uf.union(0, 3)
        uf.union(1, 4)
        labels = uf.labels()
        assert labels.shape == (6,)
        assert labels[0] == labels[3]
        assert labels[1] == labels[4]
        assert labels[0] != labels[1]
        assert set(labels.tolist()) == set(range(uf.n_sets))

    def test_component_sizes_sum(self):
        uf = UnionFind(8)
        uf.union(0, 1)
        uf.union(1, 2)
        uf.union(4, 5)
        sizes = uf.component_sizes()
        assert sizes.sum() == 8
        assert sorted(sizes.tolist(), reverse=True)[0] == 3
