"""Unit tests for timing utilities."""

import pytest

from repro.util.timing import StageTimer, Timer


class TestTimer:
    def test_context_accumulates(self):
        t = Timer()
        with t:
            pass
        assert t.elapsed >= 0.0
        first = t.elapsed
        with t:
            pass
        assert t.elapsed >= first

    def test_stop_without_start(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_explicit_start_stop(self):
        t = Timer()
        t.start()
        out = t.stop()
        assert out == t.elapsed >= 0.0


class TestStageTimer:
    def test_stages_recorded(self):
        st = StageTimer()
        with st.stage("a"):
            pass
        with st.stage("b"):
            pass
        assert set(st.elapsed) == {"a", "b"}

    def test_stage_accumulates(self):
        st = StageTimer()
        with st.stage("x"):
            pass
        first = st.elapsed["x"]
        with st.stage("x"):
            pass
        assert st.elapsed["x"] >= first

    def test_summary_format(self):
        st = StageTimer()
        with st.stage("load"):
            pass
        assert "load=" in st.summary()

    def test_exception_still_records(self):
        st = StageTimer()
        with pytest.raises(ValueError):
            with st.stage("bad"):
                raise ValueError("boom")
        assert "bad" in st.elapsed
