"""Unit tests for RNG normalisation."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.util.rng import as_generator, random_subset, spawn


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_deterministic(self):
        a = as_generator(42).integers(1 << 30)
        b = as_generator(42).integers(1 << 30)
        assert a == b

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_seedsequence_accepted(self):
        seq = np.random.SeedSequence(7)
        g = as_generator(seq)
        assert isinstance(g, np.random.Generator)

    def test_bad_type_rejected(self):
        with pytest.raises(InvalidParameterError):
            as_generator("not-a-seed")  # type: ignore[arg-type]


class TestSpawn:
    def test_spawn_count(self):
        gens = spawn(0, 5)
        assert len(gens) == 5

    def test_spawn_independent_streams(self):
        a, b = spawn(0, 2)
        assert a.integers(1 << 30) != b.integers(1 << 30) or True  # streams differ
        # deterministic across calls
        a2, b2 = spawn(0, 2)
        assert a2.integers(5_000_000) == spawn(0, 2)[0].integers(5_000_000)

    def test_spawn_zero(self):
        assert spawn(1, 0) == []

    def test_spawn_negative_rejected(self):
        with pytest.raises(InvalidParameterError):
            spawn(1, -1)

    def test_spawn_from_generator(self):
        g = np.random.default_rng(3)
        gens = spawn(g, 3)
        assert len(gens) == 3


class TestRandomSubset:
    def test_size_and_uniqueness(self):
        s = random_subset(100, 10, seed=1)
        assert s.shape == (10,)
        assert np.unique(s).shape == (10,)
        assert s.min() >= 0 and s.max() < 100

    def test_sorted(self):
        s = random_subset(50, 20, seed=2)
        assert np.all(np.diff(s) > 0)

    def test_full_universe(self):
        s = random_subset(5, 5, seed=3)
        assert np.array_equal(s, np.arange(5))

    def test_exclusions_respected(self):
        excl = np.array([0, 1, 2])
        s = random_subset(10, 7, seed=4, exclude=excl)
        assert not np.intersect1d(s, excl).size

    def test_oversized_request_rejected(self):
        with pytest.raises(InvalidParameterError):
            random_subset(5, 6, seed=0)
        with pytest.raises(InvalidParameterError):
            random_subset(5, 4, seed=0, exclude=np.array([0, 1]))

    def test_deterministic(self):
        assert np.array_equal(random_subset(30, 5, seed=9), random_subset(30, 5, seed=9))
