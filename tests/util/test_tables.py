"""Unit tests for table rendering."""

import pytest

from repro.util.tables import fmt_float, format_row_dicts, format_table


class TestFmtFloat:
    def test_integers_bare(self):
        assert fmt_float(3.0) == "3"
        assert fmt_float(-2.0) == "-2"

    def test_moderate_fixed(self):
        assert fmt_float(0.5) == "0.5"
        assert "0.123" in fmt_float(0.1235)

    def test_tiny_scientific(self):
        assert "e" in fmt_float(1e-7)

    def test_huge_scientific(self):
        assert "e" in fmt_float(1.5e7)

    def test_nan_inf(self):
        assert fmt_float(float("nan")) == "nan"
        assert fmt_float(float("inf")) == "inf"
        assert fmt_float(float("-inf")) == "-inf"


class TestFormatTable:
    def test_basic_shape(self):
        out = format_table(["a", "bb"], [[1, 2], [30, 4]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert "a" in lines[0] and "bb" in lines[0]

    def test_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_bool_rendering(self):
        out = format_table(["ok"], [[True], [False]])
        assert "yes" in out and "no" in out

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert "a" in out

    def test_column_alignment(self):
        out = format_table(["col"], [[1], [100]])
        rows = out.splitlines()[2:]
        assert len(rows[0]) == len(rows[1])  # right-justified same width


class TestFormatRowDicts:
    def test_round_trip(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 3, "b": 4.5}]
        out = format_row_dicts(rows)
        assert "a" in out and "b" in out and "4.5" in out

    def test_empty(self):
        assert format_row_dicts([], title="empty") == "empty"
        assert format_row_dicts([]) == ""
