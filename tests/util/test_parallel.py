"""Unit tests for the parallel map helper."""

import pytest

from repro.errors import InvalidParameterError
from repro.util.parallel import chunked_map, effective_workers


def _square(x):
    return x * x


class TestEffectiveWorkers:
    def test_auto(self):
        assert effective_workers(None) >= 1
        assert effective_workers(0) >= 1

    def test_explicit(self):
        assert effective_workers(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(InvalidParameterError):
            effective_workers(-1)


class TestChunkedMap:
    def test_serial_results_ordered(self):
        assert chunked_map(_square, [1, 2, 3], workers=1) == [1, 4, 9]

    def test_empty(self):
        assert chunked_map(_square, [], workers=1) == []

    def test_small_input_stays_serial(self):
        # workers > 1 but below min_parallel: still serial, same results
        assert chunked_map(_square, [2, 3], workers=4, min_parallel=10) == [4, 9]

    def test_parallel_matches_serial(self):
        items = list(range(16))
        serial = chunked_map(_square, items, workers=1)
        parallel = chunked_map(_square, items, workers=2, min_parallel=2)
        assert serial == parallel

    def test_generator_input(self):
        assert chunked_map(_square, (i for i in range(4)), workers=1) == [0, 1, 4, 9]
