"""Unit tests for parameter validation helpers."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.util.validation import (
    check_fraction,
    check_in_range,
    check_node_array,
    check_nonnegative_int,
    check_positive_int,
    check_probability,
    require,
)


class TestRequire:
    def test_passes(self):
        require(True, "never")

    def test_raises_with_message(self):
        with pytest.raises(InvalidParameterError, match="boom"):
            require(False, "boom")


class TestProbability:
    @pytest.mark.parametrize("p", [0.0, 0.5, 1.0, np.float64(0.25)])
    def test_valid(self, p):
        assert check_probability(p) == float(p)

    @pytest.mark.parametrize("p", [-0.01, 1.01, float("nan"), float("inf")])
    def test_invalid(self, p):
        with pytest.raises(InvalidParameterError):
            check_probability(p)

    def test_non_numeric(self):
        with pytest.raises(InvalidParameterError):
            check_probability("half")  # type: ignore[arg-type]

    def test_name_in_message(self):
        with pytest.raises(InvalidParameterError, match="my_p"):
            check_probability(2.0, "my_p")


class TestIntChecks:
    def test_positive_ok(self):
        assert check_positive_int(3) == 3
        assert check_positive_int(np.int64(5)) == 5

    @pytest.mark.parametrize("x", [0, -1, 1.5, True, "3"])
    def test_positive_bad(self, x):
        with pytest.raises(InvalidParameterError):
            check_positive_int(x)

    def test_nonnegative_ok(self):
        assert check_nonnegative_int(0) == 0

    @pytest.mark.parametrize("x", [-1, 0.5, False])
    def test_nonnegative_bad(self, x):
        with pytest.raises(InvalidParameterError):
            check_nonnegative_int(x)


class TestFraction:
    def test_open_left_default(self):
        assert check_fraction(0.5) == 0.5
        with pytest.raises(InvalidParameterError):
            check_fraction(0.0)

    def test_closed_left(self):
        assert check_fraction(0.0, closed_left=True) == 0.0

    @pytest.mark.parametrize("x", [1.5, -0.2, float("nan")])
    def test_invalid(self, x):
        with pytest.raises(InvalidParameterError):
            check_fraction(x)


class TestInRange:
    def test_float_ok(self):
        assert check_in_range(2.5, 0, 5) == 2.5

    def test_integer_mode(self):
        assert check_in_range(3, 0, 5, integer=True) == 3
        with pytest.raises(InvalidParameterError):
            check_in_range(3.5, 0, 5, integer=True)

    def test_out_of_range(self):
        with pytest.raises(InvalidParameterError):
            check_in_range(6, 0, 5)


class TestNodeArray:
    def test_basic(self):
        arr = check_node_array([3, 1, 2], 5)
        assert np.array_equal(arr, [1, 2, 3])

    def test_empty_allowed(self):
        assert check_node_array([], 5).size == 0

    def test_empty_forbidden(self):
        with pytest.raises(InvalidParameterError):
            check_node_array([], 5, allow_empty=False)

    def test_out_of_bounds(self):
        with pytest.raises(InvalidParameterError):
            check_node_array([5], 5)
        with pytest.raises(InvalidParameterError):
            check_node_array([-1], 5)

    def test_duplicates_rejected(self):
        with pytest.raises(InvalidParameterError):
            check_node_array([1, 1], 5)

    def test_duplicates_allowed_when_requested(self):
        arr = check_node_array([1, 1, 2], 5, unique=False)
        assert arr.shape == (3,)

    def test_integral_floats_coerced(self):
        arr = check_node_array(np.array([1.0, 2.0]), 5)
        assert arr.dtype == np.int64

    def test_fractional_floats_rejected(self):
        with pytest.raises(InvalidParameterError):
            check_node_array(np.array([1.5]), 5)
