"""Online aggregators: Welford vs numpy, CIs, P² quantiles, normal_ppf."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.util.stats import (
    OnlineStats,
    P2Quantile,
    fit_isotonic,
    fit_logistic,
    logistic_slope,
    logistic_value,
    normal_interval,
    normal_ppf,
    wilson_interval,
    z_value,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestNormalPpf:
    @pytest.mark.parametrize(
        "p,expected",
        [
            (0.5, 0.0),
            (0.975, 1.959963984540054),
            (0.995, 2.5758293035489004),
            (0.841344746068543, 1.0),
            (0.001, -3.090232306167813),
        ],
    )
    def test_known_values(self, p, expected):
        assert normal_ppf(p) == pytest.approx(expected, abs=1e-9)

    def test_symmetry(self):
        for p in (0.01, 0.1, 0.3):
            assert normal_ppf(p) == pytest.approx(-normal_ppf(1 - p), abs=1e-12)

    def test_rejects_out_of_range(self):
        for p in (0.0, 1.0, -0.1, 2.0):
            with pytest.raises(InvalidParameterError):
                normal_ppf(p)

    def test_z_value(self):
        assert z_value(0.95) == pytest.approx(1.959963984540054, abs=1e-9)
        with pytest.raises(InvalidParameterError):
            z_value(1.0)


class TestOnlineStats:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(finite_floats, min_size=2, max_size=40))
    def test_matches_numpy(self, xs):
        agg = OnlineStats()
        for x in xs:
            agg.push(x)
        assert agg.count == len(xs)
        assert agg.mean == pytest.approx(float(np.mean(xs)), rel=1e-9, abs=1e-7)
        assert agg.variance == pytest.approx(
            float(np.var(xs, ddof=1)), rel=1e-7, abs=1e-6
        )
        assert agg.minimum == min(xs)
        assert agg.maximum == max(xs)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(finite_floats, min_size=1, max_size=20),
        st.lists(finite_floats, min_size=1, max_size=20),
    )
    def test_merge_equals_sequential(self, a, b):
        left, right = OnlineStats(), OnlineStats()
        for x in a:
            left.push(x)
        for x in b:
            right.push(x)
        left.merge(right)
        seq = OnlineStats()
        for x in a + b:
            seq.push(x)
        assert left.count == seq.count
        assert left.mean == pytest.approx(seq.mean, rel=1e-9, abs=1e-7)
        assert left.variance == pytest.approx(seq.variance, rel=1e-7, abs=1e-6)

    def test_empty(self):
        agg = OnlineStats()
        assert agg.count == 0
        assert agg.variance == 0.0
        assert agg.stderr == math.inf
        assert agg.halfwidth() == math.inf

    def test_halfwidth_shrinks_with_n(self):
        rng = np.random.default_rng(0)
        small, large = OnlineStats(), OnlineStats()
        xs = rng.normal(size=400)
        for x in xs[:20]:
            small.push(x)
        for x in xs:
            large.push(x)
        assert large.halfwidth(0.95) < small.halfwidth(0.95)

    def test_dict_round_trip(self):
        agg = OnlineStats()
        for x in (1.0, 2.0, 4.0):
            agg.push(x)
        back = OnlineStats.from_dict(agg.to_dict())
        assert back.count == agg.count
        assert back.mean == agg.mean
        assert back.variance == agg.variance
        assert back.minimum == agg.minimum


class TestIntervals:
    def test_normal_interval_contains_truth(self):
        rng = np.random.default_rng(1)
        hits = 0
        for _ in range(200):
            xs = rng.normal(loc=3.0, scale=1.0, size=40)
            lo, hi = normal_interval(float(xs.mean()), float(xs.std(ddof=1)), 40)
            hits += lo <= 3.0 <= hi
        assert hits >= 180  # ~95% nominal coverage

    def test_normal_interval_tiny_n(self):
        assert normal_interval(1.0, 1.0, 1) == (-math.inf, math.inf)

    def test_wilson_basic(self):
        lo, hi = wilson_interval(8, 10)
        assert 0.0 < lo < 0.8 < hi < 1.0

    def test_wilson_never_degenerate_at_extremes(self):
        lo, hi = wilson_interval(0, 10)
        assert lo == pytest.approx(0.0, abs=1e-12) and hi > 0.05
        lo, hi = wilson_interval(10, 10)
        assert hi == pytest.approx(1.0, abs=1e-12) and lo < 0.95

    def test_wilson_empty(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_wilson_rejects_bad_successes(self):
        with pytest.raises(InvalidParameterError):
            wilson_interval(11, 10)

    def test_wilson_narrows_with_n(self):
        lo1, hi1 = wilson_interval(5, 10)
        lo2, hi2 = wilson_interval(500, 1000)
        assert hi2 - lo2 < hi1 - lo1


class TestP2Quantile:
    def test_small_sample_exact(self):
        q = P2Quantile(0.5)
        for x in (5.0, 1.0, 3.0):
            q.push(x)
        assert q.value == pytest.approx(3.0)
        assert q.count == 3

    def test_empty_is_nan(self):
        assert math.isnan(P2Quantile(0.5).value)

    @pytest.mark.parametrize("p", [0.1, 0.5, 0.9])
    def test_tracks_uniform(self, p):
        rng = np.random.default_rng(2)
        q = P2Quantile(p)
        xs = rng.random(5000)
        for x in xs:
            q.push(x)
        assert q.value == pytest.approx(p, abs=0.03)
        assert q.count == 5000

    def test_tracks_normal_median(self):
        rng = np.random.default_rng(3)
        q = P2Quantile(0.5)
        for x in rng.normal(loc=10.0, scale=2.0, size=4000):
            q.push(x)
        assert q.value == pytest.approx(10.0, abs=0.2)

    def test_rejects_degenerate_p(self):
        for p in (0.0, 1.0):
            with pytest.raises(InvalidParameterError):
                P2Quantile(p)


class TestFitIsotonic:
    def test_already_monotone_is_identity(self):
        ys = [0.1, 0.4, 0.4, 0.9]
        assert fit_isotonic(ys) == ys

    def test_pools_violators(self):
        assert fit_isotonic([1.0, 3.0, 2.0, 4.0]) == [1.0, 2.5, 2.5, 4.0]

    def test_decreasing_direction(self):
        out = fit_isotonic([0.9, 0.95, 0.5, 0.1], increasing=False)
        assert all(a >= b - 1e-12 for a, b in zip(out, out[1:]))

    def test_weights_pull_the_pool(self):
        # heavy first point dominates the pooled pair
        out = fit_isotonic([2.0, 0.0], weights=[3.0, 1.0])
        assert out[0] == out[1] == pytest.approx(1.5)

    def test_rejects_bad_weights(self):
        with pytest.raises(InvalidParameterError):
            fit_isotonic([1.0, 2.0], weights=[1.0])
        with pytest.raises(InvalidParameterError):
            fit_isotonic([1.0, 2.0], weights=[1.0, -1.0])

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(-100, 100, allow_nan=False), min_size=1, max_size=20))
    def test_output_is_monotone_and_mean_preserving(self, ys):
        out = fit_isotonic(ys)
        assert all(a <= b + 1e-9 for a, b in zip(out, out[1:]))
        assert sum(out) == pytest.approx(sum(ys), abs=1e-6 * max(1, len(ys)))


class TestFitLogistic:
    def test_recovers_midpoint(self):
        truth = (0.0, 1.0, 0.5, 12.0)
        xs = [i / 10 for i in range(11)]
        ys = [logistic_value(truth, x) for x in xs]
        lo, hi, x0, k = fit_logistic(xs, ys)
        assert x0 == pytest.approx(0.5, abs=0.05)
        # asymptotes pin to the data extremes
        assert lo == pytest.approx(min(ys), abs=1e-9)
        assert hi == pytest.approx(max(ys), abs=1e-9)
        assert k > 0

    def test_deterministic(self):
        xs = [0.0, 0.25, 0.5, 0.75, 1.0]
        ys = [0.95, 0.9, 0.5, 0.12, 0.05]
        assert fit_logistic(xs, ys) == fit_logistic(xs, ys)

    def test_slope_peaks_at_midpoint(self):
        params = (0.0, 1.0, 0.4, 10.0)
        slopes = [abs(logistic_slope(params, x)) for x in (0.0, 0.4, 1.0)]
        assert slopes[1] > slopes[0] and slopes[1] > slopes[2]

    def test_value_overflow_safe(self):
        params = (0.0, 1.0, 0.0, 1e6)
        assert logistic_value(params, 1e6) == pytest.approx(0.0, abs=1e-12)
        assert logistic_value(params, -1e6) == pytest.approx(1.0, abs=1e-12)
        assert logistic_slope(params, 1e6) == pytest.approx(0.0, abs=1e-12)
