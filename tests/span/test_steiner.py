"""Unit tests for Steiner tree computation with a networkx oracle."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import InvalidParameterError, NotConnectedError
from repro.graphs.build import to_networkx
from repro.graphs.generators import cycle_graph, mesh, path_graph, torus
from repro.graphs.graph import Graph
from repro.graphs.traversal import is_subset_connected
from repro.span.steiner import (
    approx_steiner_tree,
    steiner_tree_size,
    steiner_tree_size_exact,
)


class TestExactSteiner:
    def test_single_terminal(self, small_mesh):
        assert steiner_tree_size_exact(small_mesh, np.array([3])) == 1

    def test_two_terminals_is_path(self):
        g = mesh([4, 4])
        # distance from 0 to 15 is 6, so tree has 7 nodes
        assert steiner_tree_size_exact(g, np.array([0, 15])) == 7

    def test_star_terminals(self):
        # terminals = leaves of a star: tree must include hub
        from repro.graphs.generators import star_graph

        g = star_graph(5)
        size = steiner_tree_size_exact(g, np.array([1, 2, 3]))
        assert size == 4  # 3 leaves + hub

    def test_oracle_networkx(self):
        g = mesh([3, 4])
        terminals = [0, 5, 11]
        ours = steiner_tree_size_exact(g, np.array(terminals))
        theirs = nx.algorithms.approximation.steiner_tree(
            to_networkx(g), terminals
        ).number_of_nodes()
        # networkx is a 2-approx: ours (exact) <= theirs
        assert ours <= theirs

    def test_mesh_corner_terminals(self):
        g = mesh([3, 3])
        # corners 0, 2, 6, 8: optimal Steiner tree is the plus/cross, 9 >= size >= 7
        size = steiner_tree_size_exact(g, np.array([0, 2, 6, 8]))
        assert 7 <= size <= 9

    def test_duplicate_terminals_collapsed(self, small_mesh):
        a = steiner_tree_size_exact(small_mesh, np.array([0, 5, 5]))
        b = steiner_tree_size_exact(small_mesh, np.array([0, 5]))
        assert a == b

    def test_disconnected_terminals_raise(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(NotConnectedError):
            steiner_tree_size_exact(g, np.array([0, 2]))

    def test_too_many_terminals(self, small_torus):
        with pytest.raises(InvalidParameterError):
            steiner_tree_size_exact(small_torus, np.arange(14))

    def test_no_terminals(self, small_mesh):
        with pytest.raises(InvalidParameterError):
            steiner_tree_size_exact(small_mesh, np.array([], dtype=np.int64))


class TestApproxSteiner:
    def test_contains_terminals(self):
        g = torus(6, 2)
        terminals = np.array([0, 7, 20, 33])
        tree = approx_steiner_tree(g, terminals)
        assert np.all(np.isin(terminals, tree))

    def test_tree_connected(self):
        g = torus(6, 2)
        terminals = np.array([0, 7, 20, 33])
        tree = approx_steiner_tree(g, terminals)
        assert is_subset_connected(g, tree)

    def test_within_2x_of_exact(self):
        g = mesh([4, 4])
        terminals = np.array([0, 3, 12, 15])
        exact = steiner_tree_size_exact(g, terminals)
        approx = approx_steiner_tree(g, terminals).shape[0]
        # node-count 2-approx inherits from edge-count 2-approx loosely;
        # allow the standard 2x (+1 for the node/edge offset)
        assert approx <= 2 * exact + 1

    def test_single_terminal(self, small_mesh):
        assert np.array_equal(approx_steiner_tree(small_mesh, np.array([4])), [4])

    def test_leaf_pruning_effective(self):
        # terminals adjacent on a path: tree should be exactly the sub-path
        g = path_graph(10)
        tree = approx_steiner_tree(g, np.array([2, 6]))
        assert np.array_equal(tree, [2, 3, 4, 5, 6])

    def test_dispatcher(self, small_mesh):
        t = np.array([0, 15])
        assert steiner_tree_size(small_mesh, t) == steiner_tree_size_exact(small_mesh, t)
