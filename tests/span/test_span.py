"""Unit tests for compact-set enumeration, span, and the mesh tree (Thm 3.6)."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError, NotConnectedError
from repro.graphs.generators import cycle_graph, mesh, path_graph, torus
from repro.graphs.graph import Graph
from repro.graphs.ops import node_boundary
from repro.pruning.compact import is_compact
from repro.span.compact_enum import enumerate_compact_sets, random_compact_set
from repro.span.mesh_tree import (
    mesh_boundary_tree,
    virtual_edge_graph_connected,
    virtual_edges,
)
from repro.span.span import span_exact, span_sampled


class TestEnumerateCompactSets:
    def test_all_yielded_sets_compact(self):
        g = mesh([3, 3])
        count = 0
        for u in enumerate_compact_sets(g, max_nodes=9):
            assert is_compact(g, u)
            count += 1
        assert count > 0

    def test_cycle_compact_count(self):
        # compact sets of C_n = proper arcs: n * (n-1) of them
        n = 6
        g = cycle_graph(n)
        count = sum(1 for _ in enumerate_compact_sets(g, max_nodes=10))
        assert count == n * (n - 1)

    def test_complement_also_enumerated(self):
        g = cycle_graph(5)
        sets = [frozenset(u.tolist()) for u in enumerate_compact_sets(g, max_nodes=8)]
        full = frozenset(range(5))
        for s in sets:
            assert frozenset(full - s) in sets

    def test_size_cap(self):
        with pytest.raises(InvalidParameterError):
            list(enumerate_compact_sets(torus(6, 2), max_nodes=16))


class TestRandomCompactSet:
    def test_sampled_sets_compact(self, small_torus):
        for seed in range(5):
            u = random_compact_set(small_torus, seed=seed)
            if u is not None:
                assert is_compact(small_torus, u)

    def test_target_size_respected(self, small_torus):
        u = random_compact_set(small_torus, target_size=6, seed=1)
        assert u is not None
        assert u.size == 6

    def test_tiny_graph_none(self):
        assert random_compact_set(Graph.empty(2), seed=0) is None


class TestSpanExact:
    def test_cycle_span(self):
        # boundary of any arc = 2 endpoints-adjacent nodes; the smallest tree
        # connecting them goes through the shorter side: for C_6, worst case
        # tree has 4 nodes on 2 terminals -> span 2
        g = cycle_graph(6)
        res = span_exact(g, max_nodes=10)
        assert res.value == pytest.approx(2.0)
        assert res.exact

    def test_path_span_one(self):
        # P_n: boundary of a prefix is 1 node; tree = that node; span 1
        g = path_graph(6)
        res = span_exact(g, max_nodes=10)
        assert res.value == pytest.approx(1.0)

    def test_mesh_span_at_most_two(self):
        for sides in ([3, 3], [3, 4], [2, 2, 3]):
            res = span_exact(mesh(sides), max_nodes=14)
            assert 1.0 <= res.value <= 2.0 + 1e-9
            assert res.exact

    def test_witness_is_compact(self):
        g = mesh([3, 3])
        res = span_exact(g, max_nodes=9)
        assert is_compact(g, res.witness)

    def test_ratio_consistent(self):
        g = mesh([3, 3])
        res = span_exact(g, max_nodes=9)
        assert res.value == pytest.approx(res.tree_size / res.boundary_size)

    def test_disconnected_rejected(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(NotConnectedError):
            span_exact(g)

    def test_tiny_rejected(self):
        with pytest.raises(InvalidParameterError):
            span_exact(Graph.from_edges(2, [(0, 1)]))


class TestSpanSampled:
    def test_samples_have_valid_ratios(self, small_torus):
        samples = span_sampled(small_torus, n_samples=10, seed=0)
        assert samples
        for s in samples:
            assert s.ratio >= 1.0 - 1e-9
            assert s.tree_size >= s.boundary_size

    def test_mesh_sampled_below_two_generous(self):
        g = mesh([8, 8])
        samples = span_sampled(g, n_samples=15, seed=1)
        # approx Steiner can overshoot; allow the 2-approx factor
        assert max(s.ratio for s in samples) <= 4.0


class TestMeshTree:
    def test_virtual_edges_symmetric_definition(self):
        g = mesh([4, 4])
        b = node_boundary(g, np.array([0, 1, 4, 5]))
        ev = virtual_edges(g, b)
        for u, v in ev:
            diff = np.abs(g.coords[u] - g.coords[v])
            assert diff.max() <= 1
            assert np.count_nonzero(diff) <= 2

    def test_lemma37_connectivity_small(self):
        g = mesh([4, 4])
        for u in enumerate_compact_sets(g, max_nodes=16):
            b = node_boundary(g, u)
            assert virtual_edge_graph_connected(g, b)

    def test_construction_within_bound(self):
        g = mesh([6, 6])
        for seed in range(8):
            u = random_compact_set(g, seed=seed)
            if u is None:
                continue
            res = mesh_boundary_tree(g, u)
            assert res.virtual_connected
            assert res.within_bound
            assert res.ratio <= 2.0

    def test_tree_contains_boundary(self):
        g = mesh([5, 5])
        u = random_compact_set(g, target_size=6, seed=3)
        res = mesh_boundary_tree(g, u)
        assert np.all(np.isin(res.boundary, res.tree_nodes))

    def test_tree_connected_in_mesh(self):
        from repro.graphs.traversal import is_subset_connected

        g = mesh([6, 6])
        u = random_compact_set(g, target_size=8, seed=4)
        res = mesh_boundary_tree(g, u)
        if res.virtual_connected:
            assert is_subset_connected(g, res.tree_nodes)

    def test_3d_mesh_construction(self):
        g = mesh([4, 4, 4])
        for seed in range(5):
            u = random_compact_set(g, seed=seed)
            if u is None:
                continue
            res = mesh_boundary_tree(g, u)
            assert res.virtual_connected
            assert res.ratio <= 2.0

    def test_requires_coords(self, small_expander):
        with pytest.raises(InvalidParameterError):
            mesh_boundary_tree(small_expander, np.array([0, 1]))

    def test_empty_boundary_rejected(self):
        g = mesh([3, 3])
        with pytest.raises(InvalidParameterError):
            mesh_boundary_tree(g, np.arange(9))
