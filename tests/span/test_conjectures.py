"""Unit tests for the open-problem span survey (paper §4)."""

import numpy as np
import pytest

from repro.graphs.generators import butterfly, debruijn, mesh, shuffle_exchange
from repro.graphs.graph import Graph
from repro.span.conjectures import SpanSurvey, survey_span


class TestSurveySpan:
    def test_mesh_reference_below_two_plus_approx(self):
        survey = survey_span(mesh([8, 8]), n_samples=15, seed=0)
        assert survey.n_samples > 0
        assert 1.0 <= survey.max_ratio <= 2.5  # approx Steiner slack

    def test_statistics_ordered(self):
        survey = survey_span(mesh([6, 6]), n_samples=10, seed=1)
        assert survey.mean_ratio <= survey.p95_ratio + 1e-9
        assert survey.p95_ratio <= survey.max_ratio + 1e-9

    def test_butterfly_bounded(self):
        survey = survey_span(butterfly(4), n_samples=10, seed=2)
        assert survey.max_ratio <= 4.0

    def test_debruijn_handles_structure(self):
        survey = survey_span(debruijn(6), n_samples=10, seed=3)
        assert survey.n_samples > 0
        assert survey.max_ratio >= 1.0

    def test_shuffle_exchange(self):
        survey = survey_span(shuffle_exchange(6), n_samples=10, seed=4)
        assert survey.max_ratio >= 1.0

    def test_disconnected_input_uses_largest_component(self):
        g = Graph.from_edges(
            12,
            [(i, i + 1) for i in range(7)] + [(8, 9), (9, 10), (10, 8)],
        )
        survey = survey_span(g, n_samples=6, seed=5)
        assert survey.n_samples >= 1

    def test_row_shape(self):
        survey = survey_span(mesh([5, 5]), n_samples=5, seed=6)
        row = survey.row()
        assert set(row) == {
            "graph", "n", "samples", "span_max", "span_mean", "span_p95",
            "exact_frac",
        }

    def test_exact_fraction_in_range(self):
        survey = survey_span(mesh([5, 5]), n_samples=8, seed=7)
        assert 0.0 <= survey.exact_fraction <= 1.0

    def test_deterministic(self):
        a = survey_span(mesh([6, 6]), n_samples=8, seed=11)
        b = survey_span(mesh([6, 6]), n_samples=8, seed=11)
        assert a.max_ratio == b.max_ratio
        assert a.mean_ratio == b.mean_ratio
