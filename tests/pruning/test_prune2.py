"""Unit tests for Algorithm Prune2 (Figure 2) and its certificates."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.expansion.exact import edge_expansion_exact
from repro.faults.model import apply_node_faults
from repro.faults.random_faults import random_node_faults
from repro.graphs.generators import cycle_graph, mesh, torus
from repro.graphs.graph import Graph
from repro.pruning.certificates import (
    theorem21_expansion_bound,
    theorem21_fault_budget,
    theorem21_size_bound,
    theorem34_fault_probability,
    verify_culls,
)
from repro.pruning.compact import is_compact
from repro.pruning.cutfinder import ExhaustiveCutFinder
from repro.pruning.prune2 import prune2


class TestPrune2:
    def test_no_faults_no_culling(self):
        g = cycle_graph(12)
        ae = edge_expansion_exact(g).value
        res = prune2(g, ae, 0.5, finder=ExhaustiveCutFinder())
        assert res.n_culled == 0
        assert res.kind == "edge"

    def test_culls_disconnected_fragment(self):
        g = Graph.from_edges(9, [(0, 1), (1, 2), (3, 4), (4, 5), (5, 6), (6, 7), (7, 8)])
        res = prune2(g, 1.0, 0.5, finder=ExhaustiveCutFinder(max_nodes=10))
        assert res.n_culled >= 3  # the 3-node fragment must go

    def test_culled_sets_compact_when_connected(self):
        """On a connected G_i, each culled region is K_G(S): compact."""
        g = mesh([3, 4])
        faulty = apply_node_faults(g, np.array([1])).surviving
        ae = edge_expansion_exact(g, max_nodes=16).value
        res = prune2(faulty, ae, 0.9, finder=ExhaustiveCutFinder(max_nodes=12))
        # replay: first culled set was found in the (connected or not) G_0
        alive = np.ones(faulty.n, dtype=bool)
        for cull in res.culled:
            ids = np.flatnonzero(alive)
            current = faulty.subgraph(ids)
            pos = np.searchsorted(ids, cull.nodes)
            from repro.graphs.traversal import is_connected

            if is_connected(current) and 2 * pos.size <= current.n:
                assert is_compact(current, pos)
            alive[cull.nodes] = False

    def test_verify_culls(self):
        g = mesh([3, 4])
        faulty = apply_node_faults(g, np.array([5, 6])).surviving
        res = prune2(faulty, 1.0, 0.5, finder=ExhaustiveCutFinder(max_nodes=12))
        assert verify_culls(res)

    def test_random_faults_guarantee_small_p(self):
        g = torus(8, 2)
        ae = 1.0  # known: band cut 16 edges / 32 nodes = 0.5; use 0.5
        ae = 0.5
        eps = 1.0 / (2 * g.max_degree)
        sc = random_node_faults(g, 0.02, seed=3)
        res = prune2(sc.surviving, ae, eps)
        assert res.surviving_local.size >= g.n / 2

    def test_bad_params(self, small_mesh):
        with pytest.raises(InvalidParameterError):
            prune2(small_mesh, -0.5, 0.5)
        with pytest.raises(InvalidParameterError):
            prune2(small_mesh, 0.5, 0.0)


class TestCertificateBounds:
    def test_theorem21_size_bound(self):
        assert theorem21_size_bound(100, 5, 0.5, 2) == pytest.approx(100 - 20)

    def test_theorem21_expansion_bound(self):
        assert theorem21_expansion_bound(0.8, 4) == pytest.approx(0.6)

    def test_theorem21_fault_budget(self):
        # k f / alpha <= n/4  =>  f <= alpha n / (4k)
        assert theorem21_fault_budget(400, 0.5, 2) == 25

    def test_theorem34_probability(self):
        p = theorem34_fault_probability(4, 2.0)
        assert p == pytest.approx(1.0 / (2 * np.e * 4**8))

    def test_invalid_k(self):
        with pytest.raises(InvalidParameterError):
            theorem21_size_bound(10, 1, 0.5, 1)
        with pytest.raises(InvalidParameterError):
            theorem21_expansion_bound(0.5, 0)

    def test_invalid_alpha(self):
        with pytest.raises(InvalidParameterError):
            theorem21_size_bound(10, 1, 0.0, 2)

    def test_invalid_sigma(self):
        with pytest.raises(InvalidParameterError):
            theorem34_fault_probability(4, 0.5)
