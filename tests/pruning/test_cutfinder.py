"""Unit tests for the cut finders (Prune's set-search strategies)."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.expansion.exact import edge_expansion_exact, node_expansion_exact
from repro.graphs.generators import barbell, cycle_graph, mesh, torus
from repro.graphs.graph import Graph
from repro.graphs.ops import edge_boundary_count, node_boundary_size
from repro.graphs.traversal import is_subset_connected
from repro.pruning.cutfinder import (
    ExhaustiveCutFinder,
    HybridCutFinder,
    SweepCutFinder,
    default_cut_finder,
)


class TestExhaustive:
    def test_finds_optimal_node_cut(self):
        g = cycle_graph(10)
        finder = ExhaustiveCutFinder()
        found = finder.find(g, threshold=0.5, kind="node")
        assert found is not None
        assert found.ratio == pytest.approx(node_expansion_exact(g).value)

    def test_none_when_threshold_too_low(self):
        g = cycle_graph(10)
        finder = ExhaustiveCutFinder()
        assert finder.find(g, threshold=0.1, kind="node") is None

    def test_edge_kind_matches_exact_at_half(self):
        g = mesh([3, 3])
        finder = ExhaustiveCutFinder()
        found = finder.find(g, threshold=10.0, kind="edge")
        assert found is not None
        # the finder's ratio uses |S| as denominator; with |S| <= n/2 this
        # equals the edge-expansion denominator min(|S|, n-|S|)
        assert found.ratio <= 10.0

    def test_connected_requirement(self):
        # two distant singleton-ish sets would be the best unconstrained cut
        g = cycle_graph(12)
        finder = ExhaustiveCutFinder()
        found = finder.find(g, threshold=1.0, kind="edge", require_connected=True)
        assert found is not None
        assert is_subset_connected(g, found.nodes)

    def test_verdict_certificate_valid(self):
        g = mesh([3, 4])
        finder = ExhaustiveCutFinder()
        found = finder.find(g, threshold=1.0, kind="node")
        assert found is not None
        assert found.boundary == node_boundary_size(g, found.nodes)

    def test_size_cap_rejected(self):
        g = torus(6, 2)  # 36 nodes
        finder = ExhaustiveCutFinder(max_nodes=16)
        with pytest.raises(InvalidParameterError):
            finder.find(g, 1.0, "node")

    def test_bad_max_nodes(self):
        with pytest.raises(InvalidParameterError):
            ExhaustiveCutFinder(max_nodes=30)

    def test_empty_graph(self):
        assert ExhaustiveCutFinder().find(Graph.empty(0), 1.0, "node") is None


class TestSweep:
    def test_disconnected_returns_component(self):
        g = Graph.from_edges(8, [(0, 1), (1, 2), (3, 4), (4, 5), (5, 6), (6, 7)])
        finder = SweepCutFinder()
        found = finder.find(g, threshold=0.0, kind="node")
        assert found is not None
        assert found.ratio == 0.0
        assert np.array_equal(found.nodes, [0, 1, 2])  # the smaller component

    def test_sound_never_above_threshold(self, small_torus):
        finder = SweepCutFinder()
        found = finder.find(small_torus, threshold=0.6, kind="node")
        if found is not None:
            ratio = node_boundary_size(small_torus, found.nodes) / found.nodes.size
            assert ratio <= 0.6 + 1e-9

    def test_finds_barbell_bottleneck(self):
        g = barbell(10, 0)
        finder = SweepCutFinder()
        found = finder.find(g, threshold=0.2, kind="edge")
        assert found is not None
        assert found.nodes.size == 10  # one clique

    def test_none_on_tiny(self):
        assert SweepCutFinder().find(Graph.empty(1), 1.0, "node") is None

    def test_connected_requirement_enforced(self):
        g = barbell(8, 2)
        finder = SweepCutFinder()
        found = finder.find(g, threshold=1.0, kind="edge", require_connected=True)
        assert found is not None
        assert is_subset_connected(g, found.nodes)


class TestHybrid:
    def test_small_uses_exact(self):
        g = cycle_graph(10)
        finder = HybridCutFinder(exact_threshold=14)
        found = finder.find(g, threshold=0.4, kind="node")
        assert found is not None
        assert found.ratio == pytest.approx(2 / 5)

    def test_large_uses_sweep(self):
        g = torus(8, 2)
        finder = HybridCutFinder(exact_threshold=14)
        found = finder.find(g, threshold=1.0, kind="edge")
        assert found is not None

    def test_default_factory(self):
        assert isinstance(default_cut_finder(), HybridCutFinder)
