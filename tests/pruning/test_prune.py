"""Unit tests for Algorithm Prune (Figure 1)."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.expansion.exact import node_expansion_exact
from repro.faults.model import apply_node_faults
from repro.graphs.generators import cycle_graph, mesh, torus
from repro.graphs.graph import Graph
from repro.pruning.certificates import verify_culls
from repro.pruning.cutfinder import ExhaustiveCutFinder
from repro.pruning.prune import prune


class TestPruneBasics:
    def test_no_faults_no_culling(self):
        g = cycle_graph(12)
        alpha = node_expansion_exact(g).value
        res = prune(g, alpha, 0.5, finder=ExhaustiveCutFinder())
        assert res.n_culled == 0
        assert res.surviving_local.shape[0] == g.n
        assert res.iterations == 0

    def test_threshold_product(self):
        g = cycle_graph(12)
        res = prune(g, 0.4, 0.5, finder=ExhaustiveCutFinder())
        assert res.threshold == pytest.approx(0.2)

    def test_culls_small_disconnected_fragment(self):
        g = Graph.from_edges(10, [(i, i + 1) for i in range(8)])  # P9 + isolated 9
        res = prune(g, 1.0, 0.5, finder=ExhaustiveCutFinder(max_nodes=12))
        # the isolated node is a zero-expansion set and must be culled;
        # further culling of the path may follow, but node 9 goes first
        assert 9 in res.culled_union().tolist()

    def test_culled_sets_recorded_with_ratios(self):
        g = Graph.from_edges(8, [(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7)])
        res = prune(g, 1.0, 0.5, finder=ExhaustiveCutFinder())
        assert res.n_culled > 0
        for cull in res.culled:
            assert cull.ratio <= res.threshold + 1e-9

    def test_surviving_graph_original_ids(self):
        g = mesh([3, 4])
        faulty = apply_node_faults(g, np.array([5])).surviving
        res = prune(faulty, 0.5, 0.5, finder=ExhaustiveCutFinder(max_nodes=12))
        h = res.surviving_graph
        # original_ids of H resolve through faulty into g
        assert np.all(np.isin(h.original_ids, np.delete(np.arange(g.n), 5)))

    def test_verify_culls_passes(self):
        g = Graph.from_edges(9, [(0, 1), (1, 2), (3, 4), (4, 5), (5, 6), (6, 7), (7, 8)])
        res = prune(g, 1.0, 0.5, finder=ExhaustiveCutFinder(max_nodes=10))
        assert verify_culls(res)

    def test_bad_alpha_rejected(self, small_mesh):
        with pytest.raises(InvalidParameterError):
            prune(small_mesh, -1.0, 0.5)

    def test_bad_epsilon_rejected(self, small_mesh):
        with pytest.raises(InvalidParameterError):
            prune(small_mesh, 1.0, 0.0)
        with pytest.raises(InvalidParameterError):
            prune(small_mesh, 1.0, 1.5)

    def test_survivor_fraction(self):
        g = cycle_graph(8)
        res = prune(g, node_expansion_exact(g).value, 0.5, finder=ExhaustiveCutFinder())
        assert res.survivor_fraction == 1.0


class TestPrunePostconditions:
    def test_no_cullable_set_remains_small_graph(self):
        """After prune with the exhaustive finder, H has no set below threshold
        — i.e. H's exact expansion exceeds α·ε (the Theorem 2.1 guarantee)."""
        g = mesh([3, 4])
        faulty = apply_node_faults(g, np.array([0, 6])).surviving
        alpha = node_expansion_exact(g).value
        res = prune(faulty, alpha, 0.5, finder=ExhaustiveCutFinder(max_nodes=12))
        h = res.surviving_graph
        if h.n >= 2:
            h_alpha = node_expansion_exact(h, max_nodes=12).value
            assert h_alpha >= alpha * 0.5 - 1e-9

    def test_iterations_bounded(self, small_torus):
        res = prune(small_torus, 10.0, 1.0, max_iterations=small_torus.n + 1)
        # with an absurd threshold everything is culled in <= n iterations
        assert res.iterations <= small_torus.n + 1

    def test_everything_culled_under_huge_threshold(self):
        g = cycle_graph(8)
        res = prune(g, 100.0, 1.0, finder=ExhaustiveCutFinder())
        assert res.surviving_local.size <= 1  # nothing with >1 node survives
