"""Unit tests for compact sets and Lemma 3.3's compactification."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.graphs.generators import cycle_graph, mesh, path_graph, torus
from repro.graphs.graph import Graph
from repro.graphs.ops import edge_boundary_count
from repro.pruning.compact import compactify, is_compact


class TestIsCompact:
    def test_arc_of_cycle_compact(self):
        g = cycle_graph(8)
        assert is_compact(g, np.array([0, 1, 2]))

    def test_two_arcs_not_compact(self):
        g = cycle_graph(8)
        assert not is_compact(g, np.array([0, 4]))  # set disconnected

    def test_complement_disconnected_not_compact(self):
        g = path_graph(5)
        assert not is_compact(g, np.array([2]))  # middle vertex splits path

    def test_empty_and_full_not_compact(self, small_mesh):
        assert not is_compact(small_mesh, np.array([], dtype=np.int64))
        assert not is_compact(small_mesh, np.arange(small_mesh.n))

    def test_mesh_block_compact(self):
        g = mesh([4, 4])
        block = np.array([0, 1, 4, 5])  # 2x2 corner
        assert is_compact(g, block)

    def test_mesh_ring_not_compact(self):
        g = mesh([5, 5])
        # a ring around the centre: complement = centre + outside, disconnected
        ring = np.array([6, 7, 8, 11, 13, 16, 17, 18])
        assert not is_compact(g, ring)


class TestCompactify:
    def test_already_compact_unchanged(self):
        g = cycle_graph(8)
        s = np.array([0, 1, 2])
        assert np.array_equal(compactify(g, s), s)

    def test_returns_compact_set(self):
        g = path_graph(9)
        s = np.array([4])  # splits the path
        k = compactify(g, s)
        assert is_compact(g, k)

    def test_expansion_never_worse(self):
        g = path_graph(9)
        s = np.array([4])
        k = compactify(g, s)
        s_ratio = edge_boundary_count(g, s) / s.size
        k_ratio = edge_boundary_count(g, k) / k.size
        assert k_ratio <= s_ratio + 1e-9

    def test_case1_absorbs_small_components(self):
        # star-like: removing the hub side leaves a big component
        g = Graph.from_edges(
            7, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (1, 3)]
        )
        s = np.array([2])
        k = compactify(g, s)
        assert is_compact(g, k)
        k_ratio = edge_boundary_count(g, k) / k.size
        s_ratio = edge_boundary_count(g, s) / s.size
        assert k_ratio <= s_ratio + 1e-9

    def test_mesh_cross_set(self):
        g = mesh([5, 5])
        # plus-shaped set through the centre: complement is 4 corners
        s = np.array([2, 7, 10, 11, 12, 13, 14, 17, 22])
        assert not is_compact(g, s)
        if 2 * s.size <= g.n:
            k = compactify(g, s)
            assert is_compact(g, k)

    def test_empty_rejected(self, small_mesh):
        with pytest.raises(InvalidParameterError):
            compactify(small_mesh, np.array([], dtype=np.int64))

    def test_oversized_rejected(self):
        g = cycle_graph(8)
        with pytest.raises(InvalidParameterError):
            compactify(g, np.arange(5))

    def test_disconnected_s_rejected(self):
        g = cycle_graph(8)
        with pytest.raises(InvalidParameterError):
            compactify(g, np.array([0, 4]))

    def test_half_size_allowed(self):
        # |S| = n/2 exactly is allowed (Prune2's loop condition)
        g = cycle_graph(8)
        s = np.array([0, 1, 2, 3])
        k = compactify(g, s)
        assert is_compact(g, k)
