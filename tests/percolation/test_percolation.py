"""Unit tests for the percolation engine."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.graphs.generators import complete_graph, cycle_graph, mesh, torus
from repro.graphs.graph import Graph
from repro.percolation.bonds import (
    bond_percolation,
    bond_percolation_trial,
    bond_sweep,
)
from repro.percolation.known import known_thresholds
from repro.percolation.sites import site_percolation, site_percolation_trial
from repro.percolation.threshold import estimate_critical_probability


class TestSitePercolation:
    def test_q_one_full_graph(self, small_torus):
        assert site_percolation_trial(small_torus, 1.0, seed=0) == 1.0

    def test_q_zero_empty(self, small_torus):
        assert site_percolation_trial(small_torus, 0.0, seed=0) == 0.0

    def test_gamma_monotone_in_q(self):
        g = torus(16, 2)
        lo = site_percolation(g, 0.3, n_trials=10, seed=1).gamma_mean
        hi = site_percolation(g, 0.9, n_trials=10, seed=1).gamma_mean
        assert hi > lo

    def test_result_fields(self, small_torus):
        res = site_percolation(small_torus, 0.7, n_trials=5, seed=2)
        assert res.n_trials == 5
        assert res.samples.shape == (5,)
        assert res.p_fault == pytest.approx(0.3)
        assert 0.0 <= res.gamma_mean <= 1.0

    def test_deterministic(self, small_torus):
        a = site_percolation(small_torus, 0.5, n_trials=4, seed=7).gamma_mean
        b = site_percolation(small_torus, 0.5, n_trials=4, seed=7).gamma_mean
        assert a == b

    def test_bad_q(self, small_torus):
        with pytest.raises(InvalidParameterError):
            site_percolation_trial(small_torus, 1.2)

    def test_empty_graph(self):
        assert site_percolation_trial(Graph.empty(0), 0.5, seed=0) == 0.0


class TestBondPercolation:
    def test_q_one_full(self, small_torus):
        assert bond_percolation_trial(small_torus, 1.0, seed=0) == 1.0

    def test_q_zero_singletons(self, small_torus):
        assert bond_percolation_trial(small_torus, 0.0, seed=0) == pytest.approx(
            1 / small_torus.n
        )

    def test_mean_monotone(self):
        g = mesh([16, 16])
        lo = bond_percolation(g, 0.3, n_trials=8, seed=1).gamma_mean
        hi = bond_percolation(g, 0.7, n_trials=8, seed=1).gamma_mean
        assert hi > lo

    def test_sweep_monotone_curve(self, small_torus):
        sweep = bond_sweep(small_torus, n_sweeps=4, seed=0)
        curve = sweep.gamma_by_edges
        assert curve.shape == (small_torus.m + 1,)
        assert np.all(np.diff(curve) >= -1e-12)
        assert curve[-1] == 1.0

    def test_sweep_gamma_at(self, small_torus):
        sweep = bond_sweep(small_torus, n_sweeps=4, seed=0)
        assert sweep.gamma_at(1.0) == 1.0
        assert sweep.gamma_at(0.0) == pytest.approx(1 / small_torus.n)
        with pytest.raises(InvalidParameterError):
            sweep.gamma_at(1.5)


class TestThresholdEstimate:
    def test_complete_graph_threshold(self):
        # K_n bond threshold ~ 1/(n-1)
        g = complete_graph(40)
        est = estimate_critical_probability(
            g, mode="bond", n_trials=10, tol=0.02, seed=0
        )
        assert est.midpoint < 0.12

    def test_mesh_threshold_near_half(self):
        g = mesh([20, 20])
        est = estimate_critical_probability(
            g, mode="bond", n_trials=8, tol=0.04, seed=1
        )
        assert 0.3 < est.midpoint < 0.6

    def test_bracket_shrinks_below_tol(self, small_torus):
        est = estimate_critical_probability(
            small_torus, mode="site", n_trials=5, tol=0.05, seed=2
        )
        assert est.width <= 0.05 + 1e-12

    def test_site_mode(self, small_torus):
        est = estimate_critical_probability(
            small_torus, mode="site", n_trials=5, tol=0.1, seed=3
        )
        assert 0.0 <= est.lo <= est.hi <= 1.0

    def test_bad_target(self, small_torus):
        with pytest.raises(InvalidParameterError):
            estimate_critical_probability(small_torus, gamma_target=0.0)


class TestKnownTable:
    def test_rows_present(self):
        rows = known_thresholds()
        families = {r.family for r in rows}
        assert len(rows) == 5
        assert any("mesh" in f for f in families)
        assert any("hypercube" in f for f in families)

    def test_values_callable(self):
        for row in known_thresholds():
            params = {"n": 100, "d": 8}
            v = row.p_star(params)
            assert 0 < v < 1
            desc = row.describe(params)
            assert desc

    def test_butterfly_interval(self):
        bf = [r for r in known_thresholds() if r.family == "butterfly"][0]
        assert bf.p_star_hi is not None
        assert "[" in bf.describe({})


# ------------------------------------------------------------------ #
# Vectorised kernels vs the historical per-edge reference
# ------------------------------------------------------------------ #


def _reference_bond_sweep(graph, *, n_sweeps, seed):
    """The pre-vectorisation bond_sweep: one union + max_size read per edge."""
    from repro.util.rng import spawn
    from repro.util.unionfind import UnionFind

    edges = graph.edge_array()
    m = edges.shape[0]
    acc = np.zeros(m + 1, dtype=np.float64)
    rngs = spawn(seed, n_sweeps)
    for s in range(n_sweeps):
        order = rngs[s].permutation(m)
        uf = UnionFind(graph.n)
        curve = np.empty(m + 1, dtype=np.float64)
        curve[0] = 1.0 / max(graph.n, 1)
        e = edges[order]
        us, vs = e[:, 0].tolist(), e[:, 1].tolist()
        for k in range(m):
            uf.union(us[k], vs[k])
            curve[k + 1] = uf.max_size
        curve[1:] /= max(graph.n, 1)
        acc += curve
    acc /= n_sweeps
    return acc


def _reference_bond_percolation_samples(graph, q, *, n_trials, seed):
    """The pre-vectorisation per-trial mask formulation."""
    from repro.util.rng import spawn

    rngs = spawn(seed, n_trials)
    return np.array(
        [bond_percolation_trial(graph, q, rngs[i]) for i in range(n_trials)]
    )


class TestVectorisedBondKernels:
    def test_bond_sweep_identical_to_reference(self, small_torus):
        new = bond_sweep(small_torus, n_sweeps=4, seed=123).gamma_by_edges
        ref = _reference_bond_sweep(small_torus, n_sweeps=4, seed=123)
        np.testing.assert_array_equal(new, ref)

    def test_bond_sweep_identical_on_irregular_graph(self):
        g = mesh([5, 7])
        new = bond_sweep(g, n_sweeps=3, seed=9).gamma_by_edges
        ref = _reference_bond_sweep(g, n_sweeps=3, seed=9)
        np.testing.assert_array_equal(new, ref)

    def test_bond_percolation_samples_identical_to_reference(self, small_torus):
        res = bond_percolation(small_torus, 0.55, n_trials=12, seed=77)
        ref = _reference_bond_percolation_samples(
            small_torus, 0.55, n_trials=12, seed=77
        )
        np.testing.assert_array_equal(res.samples, ref)
        assert res.gamma_mean == pytest.approx(float(ref.mean()), abs=1e-12)
        assert res.gamma_std == pytest.approx(float(ref.std(ddof=1)), abs=1e-12)

    def test_union_edges_trace_matches_incremental_unions(self, rng):
        from repro.util.unionfind import UnionFind

        n = 40
        u = rng.integers(0, n, size=200)
        v = rng.integers(0, n, size=200)
        traced = UnionFind(n)
        trace = traced.union_edges_trace(u, v)
        stepwise = UnionFind(n)
        expected = []
        for a, b in zip(u.tolist(), v.tolist()):
            stepwise.union(a, b)
            expected.append(stepwise.max_size)
        assert trace.tolist() == expected
        # the DSU is left in the same state as the incremental path
        assert traced.n_sets == stepwise.n_sets
        assert traced.max_size == stepwise.max_size
        np.testing.assert_array_equal(traced.labels(), stepwise.labels())

    def test_trace_rejects_mismatched_shapes(self):
        from repro.util.unionfind import UnionFind

        with pytest.raises(InvalidParameterError):
            UnionFind(4).union_edges_trace(np.array([0, 1]), np.array([1]))
