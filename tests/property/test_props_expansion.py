"""Property-based tests for expansion machinery and pruning postconditions."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.expansion.estimate import estimate_node_expansion
from repro.expansion.exact import edge_expansion_exact, node_expansion_exact
from repro.expansion.local import refine_cut
from repro.expansion.sweep import best_edge_sweep_cut, best_node_sweep_cut
from repro.graphs.ops import node_expansion_of_set
from repro.graphs.traversal import is_connected
from repro.pruning.compact import compactify, is_compact
from repro.pruning.cutfinder import ExhaustiveCutFinder
from repro.pruning.prune import prune
from repro.pruning.certificates import verify_culls

from .strategies import connected_graphs, graph_with_subset


@settings(max_examples=40, deadline=None)
@given(graph_with_subset(max_nodes=10))
def test_exact_node_expansion_is_minimum(gs):
    """The exact value lower-bounds the ratio of every candidate subset."""
    g, subset = gs
    exact = node_expansion_exact(g, max_nodes=10).value
    assert node_expansion_of_set(g, subset) >= exact - 1e-12


@settings(max_examples=30, deadline=None)
@given(connected_graphs(max_nodes=10))
def test_node_edge_expansion_sandwich(g):
    """α ≤ αe ≤ δ·α (§1.3 conventions; both minimised over |S| ≤ n/2)."""
    node = node_expansion_exact(g, max_nodes=10).value
    edge = edge_expansion_exact(g, max_nodes=10).value
    delta = max(g.max_degree, 1)
    assert node <= edge + 1e-12
    assert edge <= delta * node + 1e-12


@settings(max_examples=30, deadline=None)
@given(connected_graphs(min_nodes=3, max_nodes=10))
def test_sweep_upper_bounds_exact(g):
    exact = node_expansion_exact(g, max_nodes=10).value
    cut = best_node_sweep_cut(g)
    assert cut.ratio >= exact - 1e-12
    exact_e = edge_expansion_exact(g, max_nodes=10).value
    cut_e = best_edge_sweep_cut(g)
    assert cut_e.ratio >= exact_e - 1e-12


@settings(max_examples=30, deadline=None)
@given(graph_with_subset(max_nodes=10))
def test_refine_never_worse(gs):
    g, subset = gs
    before = node_expansion_of_set(g, subset)
    refined = refine_cut(g, subset, "node")
    assert node_expansion_of_set(g, refined) <= before + 1e-12


@settings(max_examples=30, deadline=None)
@given(connected_graphs(min_nodes=3, max_nodes=10))
def test_estimate_brackets_exact(g):
    est = estimate_node_expansion(g, exact_threshold=4)  # force sweep path
    exact = node_expansion_exact(g, max_nodes=10).value
    if g.n > 4:
        assert est.lower - 1e-9 <= exact <= est.upper + 1e-9


@settings(max_examples=30, deadline=None)
@given(
    connected_graphs(min_nodes=4, max_nodes=10),
    st.floats(0.1, 1.0),
)
def test_prune_postcondition_exact(g, eps):
    """After Prune with the exhaustive finder, the surviving graph has no
    cullable set: its exact expansion exceeds the threshold (or |H| ≤ 1)."""
    alpha = node_expansion_exact(g, max_nodes=10).value
    assume(alpha > 0)
    finder = ExhaustiveCutFinder(max_nodes=10)
    res = prune(g, alpha, eps, finder=finder)
    assert verify_culls(res)
    h = res.surviving_graph
    if h.n >= 2:
        h_alpha = node_expansion_exact(h, max_nodes=10).value
        assert h_alpha >= alpha * eps - 1e-9
    # partition: culled + survivors = everything
    assert res.n_culled + h.n == g.n


@settings(max_examples=30, deadline=None)
@given(graph_with_subset(min_nodes=4, max_nodes=10))
def test_compactify_contract(gs):
    """K_G(S) is compact with edge expansion ≤ S's, whenever S qualifies."""
    from repro.graphs.ops import edge_boundary_count
    from repro.graphs.traversal import is_subset_connected

    g, subset = gs
    assume(is_subset_connected(g, subset))
    assume(2 * subset.size <= g.n)
    k = compactify(g, subset)
    assert is_compact(g, k)
    s_ratio = edge_boundary_count(g, subset) / subset.size
    k_ratio = edge_boundary_count(g, k) / k.size
    assert k_ratio <= s_ratio + 1e-9
