"""Property tests for the scenario-diversity generators and fault models.

Runs the invariants of the existing connectivity / expansion / index
property suites over the *new* topology families (Watts–Strogatz
small-world, Waxman geographic), plus the generator- and cascade-specific
contracts: rewiring preserves node and edge counts, geographic graphs
carry their sampled coordinates, cascades only ever grow the seed set,
and edge-addition "faults" never make γ worse.

Marked ``scenarios``: the CI tier added with the scenario suite runs this
module together with ``tests/batch/test_cascade_differential.py``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.expansion.exact import edge_expansion_exact, node_expansion_exact
from repro.faults.cascade import add_edge_faults, cascade_fixpoint, load_cascade
from repro.faults.random_faults import random_node_faults
from repro.graphs.graph import Graph
from repro.graphs.traversal import (
    bfs_distances,
    is_connected,
    largest_component_fraction,
)

from .strategies import geographic_graphs, small_world_graphs

pytestmark = pytest.mark.scenarios


# --------------------------------------------------------------------- #
# index suite invariants over the new families
# --------------------------------------------------------------------- #


@settings(max_examples=40, deadline=None)
@given(st.one_of(small_world_graphs(), geographic_graphs()))
def test_index_views_match_fresh_computation(g):
    """`test_props_index` contract, verbatim, on the new generators."""
    idx = g.index
    degrees = np.diff(g.indptr)
    assert idx.n == g.n and idx.m == g.m
    assert np.array_equal(idx.degrees, degrees)
    assert np.array_equal(idx.starts, g.indptr[:-1])
    assert np.array_equal(idx.isolated, degrees == 0)
    assert idx.has_isolated == bool(np.any(degrees == 0))


@settings(max_examples=40, deadline=None)
@given(st.one_of(small_world_graphs(), geographic_graphs()))
def test_edge_array_roundtrips(g):
    edges = g.index.edge_array
    assert edges.shape == (g.m, 2)
    if g.m:
        assert np.all(edges[:, 0] < edges[:, 1])
    rebuilt = Graph.from_edges(g.n, edges)
    assert rebuilt == g


# --------------------------------------------------------------------- #
# connectivity suite invariants over the new families
# --------------------------------------------------------------------- #


@settings(max_examples=40, deadline=None)
@given(
    st.one_of(small_world_graphs(), geographic_graphs()),
    st.integers(0, 10_000),
)
def test_random_faults_partition(g, seed):
    sc = random_node_faults(g, 0.3, seed=seed)
    assert sc.surviving.n + sc.f == g.n
    assert not np.intersect1d(sc.surviving_nodes, sc.faulty_nodes).size
    union = np.union1d(sc.surviving_nodes, sc.faulty_nodes)
    assert np.array_equal(union, np.arange(g.n))


@settings(max_examples=30, deadline=None)
@given(small_world_graphs(min_nodes=5, max_nodes=12), st.integers(0, 10_000))
def test_random_faults_distance_monotone(g, seed):
    """Distances never shrink under faults, small-world case."""
    assume(is_connected(g))
    sc = random_node_faults(g, 0.3, seed=seed)
    surv = sc.surviving
    assume(surv.n >= 2)
    d_faulty = bfs_distances(surv, 0)
    d_orig = bfs_distances(g, int(surv.original_ids[0]))
    for local in range(surv.n):
        if d_faulty[local] >= 0:
            assert d_faulty[local] >= d_orig[surv.original_ids[local]]


# --------------------------------------------------------------------- #
# expansion suite invariants over the new families
# --------------------------------------------------------------------- #


@settings(max_examples=20, deadline=None)
@given(st.one_of(
    small_world_graphs(min_nodes=4, max_nodes=10),
    geographic_graphs(min_nodes=4, max_nodes=10),
))
def test_node_edge_expansion_sandwich(g):
    """α ≤ αe ≤ δ·α holds for the new families too (§1.3 conventions)."""
    assume(is_connected(g))
    node = node_expansion_exact(g, max_nodes=10).value
    edge = edge_expansion_exact(g, max_nodes=10).value
    delta = max(g.max_degree, 1)
    assert node <= edge + 1e-12
    assert edge <= delta * node + 1e-12


# --------------------------------------------------------------------- #
# generator-specific contracts
# --------------------------------------------------------------------- #


@settings(max_examples=40, deadline=None)
@given(small_world_graphs())
def test_watts_strogatz_preserves_counts(g):
    """Rewiring replaces edges one for one: n·k/2 edges always."""
    n = g.n
    k = int(g.name.split("-")[2])
    assert g.m == n * k // 2
    assert g.name.startswith(f"ws-{n}-")


@settings(max_examples=40, deadline=None)
@given(geographic_graphs())
def test_geographic_carries_coords(g):
    assert g.coords is not None
    assert g.coords.shape == (g.n, 2)
    assert ((g.coords >= 0.0) & (g.coords < 1.0)).all()
    if g.name.split("-q")[1].startswith("0-"):
        assert g.m == 0  # q = 0: no pair ever connects


# --------------------------------------------------------------------- #
# cascade / add_edges model contracts
# --------------------------------------------------------------------- #


@settings(max_examples=40, deadline=None)
@given(
    st.one_of(small_world_graphs(), geographic_graphs()),
    st.sampled_from([0.0, 0.1, 0.5, 2.0]),
    st.integers(0, 10_000),
)
def test_cascade_grows_the_seed_set(g, alpha, seed):
    assume(g.n >= 1)
    rng = np.random.default_rng(seed)
    seed_mask = np.zeros(g.n, dtype=bool)
    seed_mask[int(rng.integers(0, g.n))] = True
    failed, rounds = cascade_fixpoint(g, seed_mask, alpha)
    assert (failed | seed_mask).sum() == failed.sum()  # seeds ⊆ failed
    assert 0 <= rounds <= g.n
    # determinism: the fixpoint is a pure function of (graph, mask, alpha)
    failed2, rounds2 = cascade_fixpoint(g, seed_mask, alpha)
    assert np.array_equal(failed, failed2) and rounds == rounds2


@settings(max_examples=30, deadline=None)
@given(st.one_of(small_world_graphs(), geographic_graphs()), st.integers(0, 10_000))
def test_huge_margin_confines_cascade_to_seeds(g, seed):
    """With capacity far above any reachable load, only the seed fails."""
    assume(g.n >= 1)
    sc = load_cascade(g, alpha=float(2 * g.n + 2), n_seeds=1, seed=seed)
    assert sc.f == 1
    assert sc.surviving.n == g.n - 1


@settings(max_examples=30, deadline=None)
@given(small_world_graphs(min_nodes=5, max_nodes=12),
       st.integers(0, 4), st.integers(0, 10_000))
def test_add_edges_never_hurts_gamma(g, k, seed):
    free = g.n * (g.n - 1) // 2 - g.m
    k = min(k, free)
    sc = add_edge_faults(g, k, seed=seed)
    assert sc.f == 0
    assert sc.surviving.n == g.n
    assert sc.surviving.m == g.m + k
    assert (
        largest_component_fraction(sc.surviving)
        >= largest_component_fraction(g) - 1e-12
    )
