"""Property-based tests for connectivity and fault-scenario invariants."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.faults.model import apply_node_faults
from repro.faults.random_faults import random_node_faults
from repro.graphs.connectivity import (
    edge_connectivity_between,
    global_node_connectivity,
    node_connectivity_between,
)
from repro.graphs.traversal import bfs_distances, is_connected
from repro.pruning.cutfinder import ExhaustiveCutFinder
from repro.pruning.prune2 import prune2
from repro.pruning.certificates import verify_culls

from .strategies import connected_graphs, graphs


@settings(max_examples=30, deadline=None)
@given(connected_graphs(min_nodes=3, max_nodes=9))
def test_edge_connectivity_bounded_by_degrees(g):
    """λ(s,t) ≤ min(deg s, deg t); positive iff connected."""
    s, t = 0, g.n - 1
    lam = edge_connectivity_between(g, s, t)
    assert lam <= min(int(g.degrees[s]), int(g.degrees[t]))
    assert lam >= 1  # connected


@settings(max_examples=30, deadline=None)
@given(connected_graphs(min_nodes=3, max_nodes=9))
def test_menger_sandwich(g):
    """κ(s,t) ≤ λ(s,t) for non-adjacent pairs (Menger/Whitney)."""
    s, t = 0, g.n - 1
    assume(not g.has_edge(s, t))
    kappa = node_connectivity_between(g, s, t)
    lam = edge_connectivity_between(g, s, t)
    assert kappa <= lam


@settings(max_examples=20, deadline=None)
@given(connected_graphs(min_nodes=3, max_nodes=8))
def test_global_kappa_at_most_min_degree(g):
    kappa = global_node_connectivity(g)
    if g.m < g.n * (g.n - 1) // 2:  # non-complete
        assert kappa <= g.min_degree
    assert kappa >= 1  # connected


@settings(max_examples=30, deadline=None)
@given(graphs(min_nodes=2, max_nodes=10), st.integers(0, 3))
def test_fault_scenario_partition(g, n_faults):
    """Survivors + faults partition the node set; ids resolve correctly."""
    n_faults = min(n_faults, g.n)
    faults = np.arange(n_faults, dtype=np.int64)
    sc = apply_node_faults(g, faults)
    assert sc.surviving.n + sc.f == g.n
    assert not np.intersect1d(sc.surviving_nodes, sc.faulty_nodes).size
    union = np.union1d(sc.surviving_nodes, sc.faulty_nodes)
    assert np.array_equal(union, np.arange(g.n))


@settings(max_examples=25, deadline=None)
@given(connected_graphs(min_nodes=4, max_nodes=10), st.floats(0.1, 0.9))
def test_prune2_postconditions(g, eps):
    """Prune2 culls are certified and survivors partition correctly."""
    from repro.expansion.exact import edge_expansion_exact

    ae = edge_expansion_exact(g, max_nodes=10).value
    assume(ae > 0)
    finder = ExhaustiveCutFinder(max_nodes=10)
    res = prune2(g, ae, eps, finder=finder)
    assert verify_culls(res)
    assert res.n_culled + res.surviving_local.size == g.n
    # no-fault fixpoint: threshold ae*eps < ae means nothing qualifies
    if eps < 1.0 - 1e-9:
        assert res.n_culled == 0


@settings(max_examples=20, deadline=None)
@given(connected_graphs(min_nodes=4, max_nodes=10), st.integers(0, 10_000))
def test_random_faults_distance_monotone(g, seed):
    """Distances never shrink under faults (induced subgraph property)."""
    sc = random_node_faults(g, 0.3, seed=seed)
    surv = sc.surviving
    assume(surv.n >= 2)
    d_faulty = bfs_distances(surv, 0)
    d_orig = bfs_distances(g, int(surv.original_ids[0]))
    for local in range(surv.n):
        if d_faulty[local] >= 0:
            assert d_faulty[local] >= d_orig[surv.original_ids[local]]
