"""Property-based tests: SamplingPolicy allocation laws across all kinds.

Every allocator must (a) only ever request positive trial counts, (b)
respect the per-point cap (``fixed``/``ci_width``/``cluster``/
``transition``) and the total budget (``budget``), and (c) be a pure
function of the (views, allocated) stream — replaying the same stream
through a fresh allocator reproduces the identical request sequence,
which is the property distributed fingerprint identity rests on.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.sweeps import PointView, SamplingPolicy

_POLICIES = [
    SamplingPolicy(),
    SamplingPolicy(kind="ci_width", target=0.05, min_trials=2, chunk=3),
    SamplingPolicy(kind="budget", budget=30, min_trials=2, chunk=4),
    SamplingPolicy(kind="budget", budget=30, target=0.02, min_trials=3),
    SamplingPolicy(kind="cluster", target=0.05, min_trials=2, chunk=4),
    SamplingPolicy(kind="cluster", target=0.05, min_trials=2, budget=40),
    SamplingPolicy(kind="transition", target=0.05, min_trials=2, chunk=4),
    SamplingPolicy(kind="transition", target=0.05, min_trials=2, budget=40),
]


@st.composite
def observation_streams(draw):
    """A grid size, per-point cap, and a scripted per-round view stream.

    Views are scripted rather than derived from real trials so hypothesis
    can explore degenerate shapes (all-NaN points, zero halfwidths, ties)
    that real metrics rarely produce.
    """
    n_points = draw(st.integers(1, 6))
    max_trials = draw(st.integers(1, 25))
    n_rounds = draw(st.integers(1, 8))
    rounds = []
    for _ in range(n_rounds):
        views = []
        for _ in range(n_points):
            dead = draw(st.booleans())
            if dead:
                views.append(PointView(math.inf, math.nan, 0))
            else:
                views.append(
                    PointView(
                        halfwidth=draw(
                            st.one_of(
                                st.just(math.inf),
                                st.floats(0.0, 2.0, allow_nan=False),
                            )
                        ),
                        mean=draw(st.floats(0.0, 1.0, allow_nan=False)),
                        n_finite=draw(st.integers(1, 50)),
                    )
                )
        rounds.append(views)
    return n_points, max_trials, rounds


def _drive(policy, n_points, max_trials, rounds):
    """Run one allocator over the scripted stream; return the request log."""
    allocator = policy.allocator(())
    allocated = [0] * n_points
    log = []
    for views in rounds:
        requests = allocator.next_requests(views, list(allocated), max_trials)
        log.append(list(requests))
        if not requests:
            break
        for i, n in requests:
            allocated[i] += n
    return log, allocated


@settings(max_examples=60, deadline=None)
@given(st.sampled_from(_POLICIES), observation_streams())
def test_requests_positive_and_in_range(policy, stream):
    n_points, max_trials, rounds = stream
    log, _ = _drive(policy, n_points, max_trials, rounds)
    for requests in log:
        for i, n in requests:
            assert 0 <= i < n_points
            assert n >= 1


@settings(max_examples=60, deadline=None)
@given(st.sampled_from(_POLICIES), observation_streams())
def test_per_point_cap_respected(policy, stream):
    n_points, max_trials, rounds = stream
    if policy.kind == "budget":
        return  # budget bounds the total, not per point
    _, allocated = _drive(policy, n_points, max_trials, rounds)
    assert all(a <= max_trials for a in allocated)


@settings(max_examples=60, deadline=None)
@given(
    st.sampled_from([p for p in _POLICIES if p.budget is not None]),
    observation_streams(),
)
def test_total_budget_respected(policy, stream):
    n_points, max_trials, rounds = stream
    _, allocated = _drive(policy, n_points, max_trials, rounds)
    assert sum(allocated) <= policy.budget


@settings(max_examples=60, deadline=None)
@given(st.sampled_from(_POLICIES), observation_streams())
def test_replay_determinism(policy, stream):
    n_points, max_trials, rounds = stream
    first, _ = _drive(policy, n_points, max_trials, rounds)
    second, _ = _drive(policy, n_points, max_trials, rounds)
    assert first == second


@settings(max_examples=60, deadline=None)
@given(st.sampled_from(_POLICIES), observation_streams())
def test_no_request_for_capped_points(policy, stream):
    """Once a point reaches its cap it never receives more work."""
    n_points, max_trials, rounds = stream
    allocator = policy.allocator(())
    allocated = [0] * n_points
    cap = policy.budget if policy.kind == "budget" else max_trials
    for views in rounds:
        requests = allocator.next_requests(views, list(allocated), max_trials)
        if not requests:
            break
        for i, n in requests:
            if policy.kind != "budget":
                assert allocated[i] < max_trials
            allocated[i] += n
    assert (
        sum(allocated) <= cap * (1 if policy.kind == "budget" else n_points)
    )
