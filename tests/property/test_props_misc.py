"""Property-based tests: union-find laws, percolation monotonicity, span,
table rendering totality."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import mesh
from repro.graphs.ops import node_boundary
from repro.percolation.bonds import bond_sweep
from repro.span.compact_enum import random_compact_set
from repro.span.mesh_tree import mesh_boundary_tree
from repro.span.span import span_exact
from repro.util.tables import fmt_float, format_table
from repro.util.unionfind import UnionFind

from .strategies import connected_graphs


@settings(max_examples=40, deadline=None)
@given(
    st.integers(1, 30),
    st.lists(st.tuples(st.integers(0, 29), st.integers(0, 29)), max_size=40),
)
def test_unionfind_equivalence_laws(n, pairs):
    pairs = [(a % n, b % n) for a, b in pairs]
    uf = UnionFind(n)
    merges = 0
    for a, b in pairs:
        if uf.union(a, b):
            merges += 1
    # invariant: components + merges = n
    assert uf.n_sets + merges == n
    # transitivity via labels
    labels = uf.labels()
    for a, b in pairs:
        assert labels[a] == labels[b]
    # sizes sum to n; max matches tracker
    sizes = uf.component_sizes()
    assert sizes.sum() == n
    assert sizes.max() == uf.max_size


@settings(max_examples=10, deadline=None)
@given(connected_graphs(min_nodes=4, max_nodes=9), st.integers(0, 1000))
def test_bond_sweep_curve_monotone(g, seed):
    curve = bond_sweep(g, n_sweeps=2, seed=seed).gamma_by_edges
    assert np.all(np.diff(curve) >= -1e-12)
    assert curve[-1] == 1.0


@settings(max_examples=15, deadline=None)
@given(connected_graphs(min_nodes=3, max_nodes=8))
def test_span_at_least_one(g):
    res = span_exact(g, max_nodes=8)
    assert res.value >= 1.0 - 1e-12


@settings(max_examples=15, deadline=None)
@given(st.integers(3, 8), st.integers(3, 8), st.integers(0, 10_000))
def test_mesh_tree_bound_random_meshes(rows, cols, seed):
    g = mesh([rows, cols])
    u = random_compact_set(g, seed=seed)
    if u is None:
        return
    res = mesh_boundary_tree(g, u)
    assert res.virtual_connected
    assert res.tree_nodes.shape[0] <= 2 * res.boundary.shape[0] - 1


@settings(max_examples=50, deadline=None)
@given(st.floats(allow_nan=True, allow_infinity=True))
def test_fmt_float_total(x):
    out = fmt_float(x)
    assert isinstance(out, str) and out


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.text(
            alphabet=st.characters(blacklist_categories=("Cc", "Cs")),
            min_size=1,
            max_size=8,
        ),
        min_size=1,
        max_size=4,
    ),
    st.integers(0, 5),
)
def test_format_table_total(headers, n_rows):
    # headers restricted to printable text: cells are single-line by contract
    rows = [[f"c{i}{j}" for j in range(len(headers))] for i in range(n_rows)]
    out = format_table(headers, rows)
    assert len(out.split("\n")) == 2 + n_rows
