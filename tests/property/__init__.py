"""Property-based tests (hypothesis).

This package ``__init__`` exists so pytest imports the test modules as a
package and the relative import of :mod:`.strategies` resolves.
"""
