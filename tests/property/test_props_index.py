"""Property-based tests for :class:`repro.graphs.index.GraphIndex`.

The index is a cache of derived views over an immutable CSR graph, so its
whole contract is (a) every view equals what you would compute fresh from
``indptr``/``indices``, (b) the object is *shared* across cheap graph
copies (``renamed``/``detached``) so the cache amortises, and (c) nothing
it hands out is writable — aliasing a cached array must not let a caller
corrupt every future read.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.graphs.graph import Graph
from repro.graphs.index import GraphIndex

from .strategies import graphs


@settings(max_examples=60, deadline=None)
@given(graphs())
def test_views_match_fresh_computation(g):
    idx = g.index
    n = g.n
    degrees = np.diff(g.indptr)
    assert idx.n == n and idx.m == g.m
    assert np.array_equal(idx.degrees, degrees)
    assert np.array_equal(idx.starts, g.indptr[:-1])
    assert np.array_equal(
        idx.slot_src, np.repeat(np.arange(n, dtype=np.int64), degrees)
    )
    assert np.array_equal(idx.isolated, degrees == 0)
    assert idx.has_isolated == bool(np.any(degrees == 0))


@settings(max_examples=60, deadline=None)
@given(graphs())
def test_directed_slot_pairs_are_mutual(g):
    """fwd/rev index the two directed copies of each undirected edge."""
    fwd, rev = g.index.directed_slot_pairs
    src = g.index.slot_src
    assert fwd.shape == rev.shape == (g.m,)
    # the forward slot is the (u < v) copy; its reverse slot holds (v, u)
    assert np.all(src[fwd] < g.indices[fwd])
    assert np.array_equal(src[rev], g.indices[fwd])
    assert np.array_equal(g.indices[rev], src[fwd])


@settings(max_examples=60, deadline=None)
@given(graphs())
def test_edge_array_matches_graph_contract(g):
    edges = g.index.edge_array
    assert edges.shape == (g.m, 2)
    if g.m:
        assert np.all(edges[:, 0] < edges[:, 1])
    assert Graph.from_edges(g.n, edges) == g
    # and the Graph-level accessor serves the very same cached object
    assert g.edge_array() is edges


@settings(max_examples=40, deadline=None)
@given(graphs())
def test_index_shared_across_copies(g):
    """renamed/detached share arrays, so they share the index object."""
    idx = g.index
    assert g.renamed("other").index is idx
    assert g.detached().index is idx
    # repeated access memoises on the graph
    assert g.index is idx


@settings(max_examples=40, deadline=None)
@given(graphs())
def test_views_are_read_only(g):
    idx = g.index
    for arr in (idx.degrees, idx.slot_src, idx.isolated, idx.edge_array,
                *idx.directed_slot_pairs):
        assert not arr.flags.writeable
        with pytest.raises(ValueError):
            arr[...] = 0


def test_standalone_index_equals_graph_index_views():
    g = Graph.from_edges(5, np.array([[0, 1], [1, 2], [3, 4]], dtype=np.int64))
    standalone = GraphIndex(g.indptr, g.indices)
    assert np.array_equal(standalone.degrees, g.index.degrees)
    assert np.array_equal(standalone.edge_array, g.index.edge_array)
