"""Property-based tests for the graph kernel and boundary operators."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.graph import Graph, neighbors_of_many
from repro.graphs.ops import (
    edge_boundary_count,
    node_boundary,
    node_boundary_size,
)
from repro.graphs.traversal import (
    connected_components,
    connected_components_unionfind,
)

from .strategies import connected_graphs, graph_with_subset, graphs


@settings(max_examples=60, deadline=None)
@given(graphs())
def test_csr_invariants_hold(g):
    """Every constructed graph passes structural validation."""
    g.validate()
    assert g.indices.shape[0] == 2 * g.m
    assert int(g.degrees.sum()) == 2 * g.m


@settings(max_examples=60, deadline=None)
@given(graphs())
def test_edge_array_round_trip(g):
    """Rebuilding from edge_array reproduces the same graph."""
    rebuilt = Graph.from_edges(g.n, g.edge_array())
    assert rebuilt == g


@settings(max_examples=60, deadline=None)
@given(graphs(), st.randoms(use_true_random=False))
def test_subgraph_composition(g, rnd):
    """subgraph(A).subgraph(B) equals subgraph(A[B]) with composed ids."""
    if g.n < 2:
        return
    a = sorted(rnd.sample(range(g.n), k=max(1, g.n // 2)))
    sub1 = g.subgraph(a)
    if sub1.n == 0:
        return
    b = sorted(rnd.sample(range(sub1.n), k=max(1, sub1.n // 2)))
    sub2 = sub1.subgraph(b)
    direct = g.subgraph([a[i] for i in b])
    assert sub2 == direct
    assert np.array_equal(sub2.original_ids, direct.original_ids)


@settings(max_examples=60, deadline=None)
@given(graph_with_subset())
def test_neighbors_of_many_total_degree(gs):
    g, subset = gs
    out = neighbors_of_many(g, subset)
    assert out.shape[0] == int(g.degrees[subset].sum())


@settings(max_examples=60, deadline=None)
@given(graph_with_subset())
def test_node_boundary_disjoint_and_adjacent(gs):
    g, subset = gs
    b = node_boundary(g, subset)
    sset = set(subset.tolist())
    assert not (set(b.tolist()) & sset)
    for v in b.tolist():
        assert any(u in sset for u in g.neighbors(v).tolist())


@settings(max_examples=60, deadline=None)
@given(graph_with_subset())
def test_boundary_inequalities(gs):
    """|Γ(S)| ≤ |∂e S| ≤ δ·|Γ(S)| — the node/edge boundary sandwich used
    throughout the paper's Section 3 proofs."""
    g, subset = gs
    nb = node_boundary_size(g, subset)
    eb = edge_boundary_count(g, subset)
    delta = max(g.max_degree, 1)
    assert nb <= eb
    assert eb <= delta * nb


@settings(max_examples=60, deadline=None)
@given(graph_with_subset())
def test_boundary_subadditive_over_union(gs):
    """Γ(A ∪ B) ⊆ Γ(A) ∪ Γ(B) (Lemma 2.2's first inequality)."""
    g, subset = gs
    half = subset[: max(1, subset.size // 2)]
    rest = subset[max(1, subset.size // 2):]
    whole = set(node_boundary(g, subset).tolist())
    parts = set(node_boundary(g, half).tolist())
    if rest.size:
        parts |= set(node_boundary(g, rest).tolist())
    assert whole <= parts


@settings(max_examples=40, deadline=None)
@given(graphs())
def test_components_bfs_equals_unionfind(g):
    a = connected_components(g)
    b = connected_components_unionfind(g)
    # identical partitions
    remap = {}
    for x, y in zip(a.tolist(), b.tolist()):
        assert remap.setdefault(x, y) == y


@settings(max_examples=40, deadline=None)
@given(connected_graphs())
def test_connected_graph_single_component(g):
    assert connected_components(g).max() == 0
