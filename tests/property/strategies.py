"""Shared hypothesis strategies: random small graphs with controlled shape."""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.graphs.generators.smallworld import geographic, watts_strogatz
from repro.graphs.graph import Graph


@st.composite
def edge_lists(draw, min_nodes=2, max_nodes=10, max_extra_edges=15):
    """A random graph as (n, edges) with no self-loops."""
    n = draw(st.integers(min_nodes, max_nodes))
    n_edges = draw(st.integers(0, max_extra_edges))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=n_edges,
            max_size=n_edges,
        )
    )
    edges = [(u, v) for u, v in edges if u != v]
    return n, edges


@st.composite
def graphs(draw, min_nodes=2, max_nodes=10, max_extra_edges=15):
    """A random simple graph (possibly disconnected)."""
    n, edges = draw(edge_lists(min_nodes, max_nodes, max_extra_edges))
    return Graph.from_edges(n, np.array(edges, dtype=np.int64).reshape(-1, 2))


@st.composite
def connected_graphs(draw, min_nodes=2, max_nodes=10, max_extra_edges=12):
    """A random connected simple graph: random permutation path + extra edges."""
    n = draw(st.integers(min_nodes, max_nodes))
    perm = draw(st.permutations(list(range(n))))
    tree_edges = [(perm[i], perm[i + 1]) for i in range(n - 1)]
    n_extra = draw(st.integers(0, max_extra_edges))
    extra = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=n_extra,
            max_size=n_extra,
        )
    )
    edges = tree_edges + [(u, v) for u, v in extra if u != v]
    return Graph.from_edges(n, np.array(edges, dtype=np.int64).reshape(-1, 2))


@st.composite
def small_world_graphs(draw, min_nodes=4, max_nodes=14):
    """A Watts–Strogatz graph across the whole lattice→random interpolation."""
    n = draw(st.integers(min_nodes, max_nodes))
    k = draw(st.sampled_from([j for j in (2, 4) if j < n]))
    beta = draw(st.sampled_from([0.0, 0.1, 0.3, 0.7, 1.0]))
    seed = draw(st.integers(0, 2**31 - 1))
    return watts_strogatz(n, k, beta, seed=seed)


@st.composite
def geographic_graphs(draw, min_nodes=2, max_nodes=14):
    """A Waxman geographic graph, from near-empty to near-complete."""
    n = draw(st.integers(min_nodes, max_nodes))
    q = draw(st.sampled_from([0.0, 0.3, 0.7, 1.0]))
    scale = draw(st.sampled_from([0.05, 0.2, 0.5, 2.0]))
    seed = draw(st.integers(0, 2**31 - 1))
    return geographic(n, q, scale, seed=seed)


@st.composite
def graph_with_subset(draw, min_nodes=3, max_nodes=10):
    """A connected graph plus a non-empty subset of at most half its nodes."""
    g = draw(connected_graphs(min_nodes=min_nodes, max_nodes=max_nodes))
    size = draw(st.integers(1, max(1, g.n // 2)))
    subset = draw(
        st.lists(st.integers(0, g.n - 1), min_size=size, max_size=size, unique=True)
    )
    return g, np.array(sorted(subset), dtype=np.int64)
