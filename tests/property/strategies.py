"""Shared hypothesis strategies: random small graphs with controlled shape."""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.graphs.graph import Graph


@st.composite
def edge_lists(draw, min_nodes=2, max_nodes=10, max_extra_edges=15):
    """A random graph as (n, edges) with no self-loops."""
    n = draw(st.integers(min_nodes, max_nodes))
    n_edges = draw(st.integers(0, max_extra_edges))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=n_edges,
            max_size=n_edges,
        )
    )
    edges = [(u, v) for u, v in edges if u != v]
    return n, edges


@st.composite
def graphs(draw, min_nodes=2, max_nodes=10, max_extra_edges=15):
    """A random simple graph (possibly disconnected)."""
    n, edges = draw(edge_lists(min_nodes, max_nodes, max_extra_edges))
    return Graph.from_edges(n, np.array(edges, dtype=np.int64).reshape(-1, 2))


@st.composite
def connected_graphs(draw, min_nodes=2, max_nodes=10, max_extra_edges=12):
    """A random connected simple graph: random permutation path + extra edges."""
    n = draw(st.integers(min_nodes, max_nodes))
    perm = draw(st.permutations(list(range(n))))
    tree_edges = [(perm[i], perm[i + 1]) for i in range(n - 1)]
    n_extra = draw(st.integers(0, max_extra_edges))
    extra = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=n_extra,
            max_size=n_extra,
        )
    )
    edges = tree_edges + [(u, v) for u, v in extra if u != v]
    return Graph.from_edges(n, np.array(edges, dtype=np.int64).reshape(-1, 2))


@st.composite
def graph_with_subset(draw, min_nodes=3, max_nodes=10):
    """A connected graph plus a non-empty subset of at most half its nodes."""
    g = draw(connected_graphs(min_nodes=min_nodes, max_nodes=max_nodes))
    size = draw(st.integers(1, max(1, g.n // 2)))
    subset = draw(
        st.lists(st.integers(0, g.n - 1), min_size=size, max_size=size, unique=True)
    )
    return g, np.array(sorted(subset), dtype=np.int64)
