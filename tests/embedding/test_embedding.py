"""Unit tests for embeddings and fault-displacement remapping."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError, NotConnectedError
from repro.embedding.embed import (
    embed_with_bfs_paths,
    identity_embedding_metrics,
)
from repro.embedding.remap import emulate_after_faults, nearest_survivor_mapping
from repro.faults.model import apply_node_faults
from repro.faults.random_faults import random_node_faults
from repro.graphs.generators import cycle_graph, mesh, path_graph, torus
from repro.graphs.graph import Graph


class TestEmbeddingMetrics:
    def test_identity_embedding(self, small_torus):
        m = identity_embedding_metrics(small_torus)
        assert m.load == 1
        assert m.congestion == 1
        assert m.dilation == 1
        assert m.slowdown_bound == 3

    def test_collapse_all_to_one_node(self):
        guest = cycle_graph(4)
        host = cycle_graph(4)
        mapping = np.zeros(4, dtype=np.int64)
        m = embed_with_bfs_paths(guest, host, mapping)
        assert m.load == 4
        assert m.congestion == 0  # all edges map to trivial paths
        assert m.dilation == 0

    def test_dilation_counts_longest_path(self):
        guest = Graph.from_edges(2, [(0, 1)])
        host = path_graph(5)
        mapping = np.array([0, 4])
        m = embed_with_bfs_paths(guest, host, mapping)
        assert m.dilation == 4
        assert m.congestion == 1

    def test_congestion_shared_edge(self):
        # two guest edges forced through the same host bridge
        guest = Graph.from_edges(4, [(0, 1), (2, 3)])
        host = Graph.from_edges(4, [(0, 2), (2, 3), (3, 1)])  # path 0-2-3-1
        mapping = np.array([0, 1, 0, 1])
        m = embed_with_bfs_paths(guest, host, mapping)
        assert m.congestion == 2  # both guest edges use the whole path

    def test_wrong_mapping_shape(self, small_mesh):
        with pytest.raises(InvalidParameterError):
            embed_with_bfs_paths(small_mesh, small_mesh, np.array([0]))

    def test_target_out_of_range(self):
        g = cycle_graph(4)
        with pytest.raises(InvalidParameterError):
            embed_with_bfs_paths(g, g, np.array([0, 1, 2, 9]))

    def test_disconnected_pair_raises(self):
        guest = Graph.from_edges(2, [(0, 1)])
        host = Graph.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(NotConnectedError):
            embed_with_bfs_paths(guest, host, np.array([0, 2]))


class TestRemap:
    def test_survivors_map_to_themselves(self, small_torus):
        sc = apply_node_faults(small_torus, np.array([0, 5]))
        mapping = nearest_survivor_mapping(sc)
        survivors = sc.surviving_nodes
        for local, orig in enumerate(survivors.tolist()):
            assert mapping[orig] == local

    def test_faulty_map_to_adjacent_survivor(self):
        g = torus(6, 2)
        sc = apply_node_faults(g, np.array([7]))
        mapping = nearest_survivor_mapping(sc)
        # node 7's image must be one of its neighbours (all survive)
        target_orig = sc.surviving_nodes[mapping[7]]
        assert target_orig in g.neighbors(7).tolist()

    def test_emulation_degrades_gracefully(self):
        g = torus(8, 2)
        sc = random_node_faults(g, 0.05, seed=4)
        metrics = emulate_after_faults(sc)
        assert metrics.load >= 1
        assert metrics.dilation >= 1
        # light faults keep slowdown modest
        assert metrics.slowdown_bound < 40

    def test_fault_free_emulation_is_identity(self, small_torus):
        sc = apply_node_faults(small_torus, np.array([], dtype=np.int64))
        metrics = emulate_after_faults(sc)
        assert metrics.load == 1 and metrics.dilation == 1

    def test_no_survivors_rejected(self):
        g = cycle_graph(4)
        sc = apply_node_faults(g, np.arange(4))
        with pytest.raises(InvalidParameterError):
            nearest_survivor_mapping(sc)

    def test_unreachable_nodes_rejected(self):
        # killing the middle of a path strands one side from the survivors
        g = path_graph(5)
        sc = apply_node_faults(g, np.array([2]))
        # survivors {0,1,3,4} are in two components; mapping still works
        mapping = nearest_survivor_mapping(sc)
        assert mapping.shape == (5,)
