"""Unit tests for routing consequences: stretch, diffusion, congestion."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.faults.model import apply_node_faults
from repro.graphs.generators import barbell, cycle_graph, mesh, path_graph, torus
from repro.graphs.graph import Graph
from repro.routing.flow import route_permutation
from repro.routing.loadbalance import (
    diffusion_rounds_to_balance,
    diffusion_step_matrix,
)
from repro.routing.paths import (
    expansion_distance_bound,
    sampled_diameter,
    stretch_statistics,
)


class TestPaths:
    def test_sampled_diameter_cycle(self):
        g = cycle_graph(12)
        assert sampled_diameter(g, n_sources=12, seed=0) == 6

    def test_sampled_diameter_lower_bounds_true(self):
        g = mesh([5, 5])
        d = sampled_diameter(g, n_sources=3, seed=1)
        assert d <= 8  # true diameter

    def test_distance_bound_monotone(self):
        assert expansion_distance_bound(0.1, 100) > expansion_distance_bound(0.5, 100)

    def test_distance_bound_positive_alpha_required(self):
        with pytest.raises(InvalidParameterError):
            expansion_distance_bound(0.0, 100)

    def test_stretch_identity(self, small_torus):
        # surviving == original (no faults): stretch exactly 1
        sc = apply_node_faults(small_torus, np.array([], dtype=np.int64))
        stats = stretch_statistics(small_torus, sc.surviving, n_pairs=20, seed=0)
        assert stats.mean == pytest.approx(1.0)
        assert stats.max == pytest.approx(1.0)
        assert stats.unreachable == 0

    def test_stretch_increases_with_faults(self):
        g = torus(10, 2)
        # remove a full row except one node: paths must detour
        row = np.arange(10, 19)
        sc = apply_node_faults(g, row)
        stats = stretch_statistics(g, sc.surviving, n_pairs=40, seed=1)
        assert stats.max >= 1.0

    def test_stretch_needs_survivors(self):
        g = cycle_graph(5)
        sc = apply_node_faults(g, np.arange(4))
        with pytest.raises(InvalidParameterError):
            stretch_statistics(g, sc.surviving, n_pairs=4, seed=0)


class TestDiffusion:
    def test_step_matrix_row_stochastic(self, small_torus):
        p = diffusion_step_matrix(small_torus)
        rows = np.asarray(p.sum(axis=1)).ravel()
        assert np.allclose(rows, 1.0)

    def test_conserves_mass(self, small_torus):
        p = diffusion_step_matrix(small_torus)
        x = np.zeros(small_torus.n)
        x[0] = small_torus.n
        for _ in range(10):
            x = p @ x
        assert x.sum() == pytest.approx(small_torus.n)

    def test_converges_on_connected(self, small_torus):
        res = diffusion_rounds_to_balance(small_torus, seed=0, tolerance=0.1)
        assert res.converged
        assert res.rounds > 0

    def test_does_not_converge_disconnected(self):
        g = Graph.from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        res = diffusion_rounds_to_balance(g, seed=0, max_rounds=50)
        assert not res.converged

    def test_bottleneck_slower_than_expander(self):
        bb = barbell(12, 0)
        tor = torus(5, 2)  # 25 nodes, comparable size
        r_bb = diffusion_rounds_to_balance(bb, seed=1, tolerance=0.1).rounds
        r_tor = diffusion_rounds_to_balance(tor, seed=1, tolerance=0.1).rounds
        assert r_bb > r_tor

    def test_explicit_initial_vector(self, small_mesh):
        x = np.ones(small_mesh.n)
        res = diffusion_rounds_to_balance(small_mesh, initial=x, tolerance=0.05)
        assert res.rounds == 0  # already balanced

    def test_bad_initial(self, small_mesh):
        with pytest.raises(InvalidParameterError):
            diffusion_rounds_to_balance(small_mesh, initial=np.ones(3))
        with pytest.raises(InvalidParameterError):
            diffusion_rounds_to_balance(small_mesh, initial=np.zeros(small_mesh.n))


class TestRoutePermutation:
    def test_all_routed_connected(self, small_torus):
        load = route_permutation(small_torus, seed=0)
        assert load.failed == 0
        assert load.routed == small_torus.n

    def test_congestion_positive(self, small_torus):
        load = route_permutation(small_torus, seed=1)
        assert load.max_congestion >= 1
        assert load.congestion_imbalance >= 1.0

    def test_partial_demands(self, small_torus):
        load = route_permutation(small_torus, n_demands=10, seed=2)
        assert load.routed + load.failed == 10

    def test_failures_on_disconnected(self):
        g = Graph.from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        load = route_permutation(g, seed=3)
        assert load.routed + load.failed == 6

    def test_bottleneck_congestion_worse(self):
        bb = barbell(10, 0)
        tor = torus(5, 2)
        c_bb = route_permutation(bb, seed=4).congestion_imbalance
        c_tor = route_permutation(tor, seed=4).congestion_imbalance
        assert c_bb > c_tor

    def test_tiny_rejected(self):
        with pytest.raises(InvalidParameterError):
            route_permutation(Graph.empty(1))
