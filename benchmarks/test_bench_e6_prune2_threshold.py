"""E6 — Theorem 3.4: Prune2's guarantee vs random-fault probability.

Success = |H| ≥ n/2 and αe(H) ≥ ε·αe.  The theory threshold 1/(2e·δ^{4σ})
must sit (far) below the empirical one — the paper itself calls the span
dependency loose (Section 4).
"""

from repro.core.experiments import experiment_e6_prune2_threshold


def test_bench_e6_prune2_threshold(benchmark, report_table):
    rows = benchmark.pedantic(
        lambda: experiment_e6_prune2_threshold(seed=0, n_trials=5),
        rounds=1,
        iterations=1,
    )
    report_table(
        "e6_prune2_threshold",
        rows,
        title="E6 (Theorem 3.4): Prune2 success rate vs fault probability",
    )
    at_theory = [r for r in rows if r["p_fault"] <= r["theory_p_max"] * 1.5]
    assert at_theory and all(r["success_rate"] == 1.0 for r in at_theory), (
        "guarantee must hold at the theory probability"
    )
    heavy = [r for r in rows if r["p_fault"] >= 0.5]
    assert heavy and all(r["success_rate"] < 1.0 for r in heavy), (
        "expected failures past the percolation threshold"
    )
