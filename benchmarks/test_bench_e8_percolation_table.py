"""E8 — Section 1.1 survey: critical probabilities, measured vs literature.

Regenerates the paper's background table (Erdős–Rényi, Kesten, AKS,
Karlin–Nelson–Tamaki rows) with Monte-Carlo threshold bracketing.  Exact
asymptotic agreement is impossible at finite sizes; the check pins the
*ordering* and coarse magnitudes the paper's narrative relies on.
"""

from repro.core.experiments import experiment_e8_percolation_table


def test_bench_e8_percolation_table(benchmark, report_table):
    rows = benchmark.pedantic(
        lambda: experiment_e8_percolation_table(seed=0, n_trials=10, tol=0.02),
        rounds=1,
        iterations=1,
    )
    report_table(
        "e8_percolation_table",
        rows,
        title="E8 (§1.1 survey): critical probabilities, literature vs measured",
    )
    by_family = {r["family"]: r["measured_p*"] for r in rows}
    # ordering of thresholds matches the survey
    assert by_family["complete graph K_n"] < by_family["hypercube Q_d"]
    assert by_family["hypercube Q_d"] < by_family["random graph, d·n/2 edges"]
    assert by_family["random graph, d·n/2 edges"] < by_family["2-D mesh (n×n)"]
    # coarse magnitudes
    assert by_family["complete graph K_n"] < 0.06
    assert 0.35 < by_family["2-D mesh (n×n)"] < 0.6
    assert 0.25 < by_family["butterfly"] < 0.65
