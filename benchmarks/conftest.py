"""Benchmark-suite fixtures.

Each experiment bench times its runner once (``benchmark.pedantic`` with a
single round — the experiments are minutes-scale aggregates, not
microseconds) and emits the regenerated paper table both to stdout and to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can reference stable
artifacts.  Kernel micro-benches use the default calibrated timing loop.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.util.tables import format_row_dicts

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report_table(results_dir, capsys):
    """Write an experiment's row-dicts to disk and echo them to the terminal."""

    def _report(name: str, rows, title: str | None = None) -> None:
        text = format_row_dicts(rows, title=title or name)
        (results_dir / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print(f"\n{text}\n")

    return _report
