"""E3 — Theorem 2.3: Θ(α·N) adversarial faults shatter chain graphs.

Removing one centre per chain (m = δ·n/2 faults, a Θ(α) fraction of N)
leaves only components below the paper's δ·k/2 + O(1) bound; the largest
fraction shrinks along the family — the definition of 'sublinear pieces'.
"""

from repro.core.experiments import experiment_e3_chain_attack


def test_bench_e3_chain_attack(benchmark, report_table):
    rows = benchmark.pedantic(
        lambda: experiment_e3_chain_attack(seed=0), rounds=1, iterations=1
    )
    report_table(
        "e3_chain_attack",
        rows,
        title="E3 (Theorem 2.3): chain-centre attack shatters H(G,k)",
    )
    assert all(r["bound_ok"] for r in rows)
    for k in (4, 8):
        series = [r["largest_frac"] for r in rows if r["k"] == k]
        assert series == sorted(series, reverse=True), (
            f"largest-component fraction not shrinking along the k={k} family"
        )
