"""E11 — ablation of the Prune cut-search strategy (DESIGN.md §2).

Checks the substitution claim the reproduction rests on: heuristic search
(sweep ± refinement) only *under-culls* relative to exhaustive ground truth
— |H| from a heuristic run is never smaller than the exact run's on
identical fault sets — so the Theorem 2.1 size guarantee transfers.
"""

from repro.core.experiments import experiment_e11_cutfinder_ablation


def test_bench_e11_cutfinder_ablation(benchmark, report_table):
    rows = benchmark.pedantic(
        lambda: experiment_e11_cutfinder_ablation(seed=0, n_trials=5),
        rounds=1,
        iterations=1,
    )
    report_table(
        "e11_cutfinder_ablation",
        rows,
        title="E11 (ablation): cut-finder strategies on identical fault sets",
    )
    small = {r["finder"]: r for r in rows if r["graph"] == "torus-4x4"}
    # heuristics never cull more than exhaustive ground truth
    assert small["sweep+refine"]["mean_H"] >= small["exhaustive"]["mean_H"] - 1e-9
    assert small["sweep"]["mean_H"] >= small["exhaustive"]["mean_H"] - 1e-9
    big = {r["finder"]: r for r in rows if r["graph"] != "torus-4x4"}
    # refinement can only move the heuristic toward ground truth (cull more)
    assert big["sweep+refine"]["mean_H"] <= big["sweep"]["mean_H"] + 1e-9
