"""K0 — kernel micro-benchmarks.

Times the primitives every experiment leans on, at representative sizes.
These are calibrated pytest-benchmark loops (many iterations), unlike the
one-shot experiment benches.
"""

import numpy as np
import pytest

from repro.expansion.sweep import best_edge_sweep_cut, fiedler_order
from repro.faults.random_faults import random_node_faults
from repro.graphs.generators import torus
from repro.graphs.graph import neighbors_of_many
from repro.graphs.ops import node_boundary
from repro.graphs.traversal import bfs_distances, connected_components
from repro.percolation.sites import site_percolation_trial
from repro.pruning.prune import prune
from repro.spectral.eigen import fiedler_vector
from repro.span.steiner import approx_steiner_tree
from repro.util.unionfind import UnionFind


@pytest.fixture(scope="module")
def torus_4k():
    return torus(64, 2)  # 4096 nodes, 8192 edges


@pytest.fixture(scope="module")
def torus_1k():
    return torus(32, 2)


def test_bench_bfs_distances(benchmark, torus_4k):
    benchmark(bfs_distances, torus_4k, 0)


def test_bench_connected_components(benchmark, torus_4k):
    benchmark(connected_components, torus_4k)


def test_bench_neighbors_gather(benchmark, torus_4k):
    nodes = np.arange(0, torus_4k.n, 2)
    benchmark(neighbors_of_many, torus_4k, nodes)


def test_bench_node_boundary(benchmark, torus_4k):
    subset = np.arange(torus_4k.n // 2)
    benchmark(node_boundary, torus_4k, subset)


def test_bench_unionfind_union_edges(benchmark, torus_4k):
    edges = torus_4k.edge_array()

    def run():
        uf = UnionFind(torus_4k.n)
        uf.union_edges(edges[:, 0], edges[:, 1])
        return uf.max_size

    benchmark(run)


def test_bench_fiedler_vector(benchmark, torus_1k):
    benchmark(fiedler_vector, torus_1k)


def test_bench_sweep_cut(benchmark, torus_1k):
    order = fiedler_order(torus_1k)
    benchmark(best_edge_sweep_cut, torus_1k, order)


def test_bench_subgraph(benchmark, torus_4k):
    keep = np.arange(0, torus_4k.n, 3)
    benchmark(torus_4k.subgraph, keep)


def test_bench_site_percolation_trial(benchmark, torus_4k):
    benchmark(site_percolation_trial, torus_4k, 0.6, 0)


def test_bench_prune_faulty_torus(benchmark, torus_1k):
    scenario = random_node_faults(torus_1k, 0.05, seed=1)

    def run():
        return prune(scenario.surviving, 4 / 32, 0.5)

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_bench_steiner_approx(benchmark, torus_1k):
    rng = np.random.default_rng(0)
    terminals = rng.choice(torus_1k.n, size=12, replace=False)
    benchmark(approx_steiner_tree, torus_1k, terminals)
