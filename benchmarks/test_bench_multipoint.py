"""Cross-grid-point stacking benchmark: the wins this PR exists for.

Two pinned speedups, both measured against the *previous* execution
strategy on the same machine in the same process:

* **multi-point**: a 96-point grid on one shared torus, 2 trials per
  point, evaluated per point (one ``run_trials_batched`` kernel call per
  grid point — the pre-PR sweep behaviour) vs stacked (one
  ``run_points_batched`` call evaluating all 192 trials as one mask
  tensor).  Required: >= 3x.
* **threshold**: ``estimate_critical_probability`` with the classical
  one-probe-per-round bisection (``ladder=1`` — the pre-PR schedule,
  including its per-probe RNG spawn) vs the stacked probe ladder
  (``ladder=3`` — two bisection steps of bracket shrink per kernel
  call), summed over four seeds to average out per-seed probe counts.
  Required: >= 2x.

Both regimes are chosen where per-call overhead dominates row compute —
small graphs, many kernel invocations — because that is exactly the
regime stacking exists to fix; at large n the kernel itself dominates
and both paths converge.  The stacked multi-point records must be
bit-identical to the per-point records, so the speedup is a pure
execution change.  Timings and the speedup ratios are written to
``benchmarks/results/BENCH_multipoint.json`` (uploaded as a CI artifact).
"""

from __future__ import annotations

import json
import time

from repro.api.session import Session
from repro.api.specs import AnalysisSpec, FaultSpec, GraphSpec, ScenarioSpec
from repro.graphs.generators import mesh
from repro.percolation.threshold import estimate_critical_probability

MEASURE_ONLY = AnalysisSpec(mode="node", pruner=None, measure_expansion=False)
TORUS = GraphSpec("torus", {"sides": 8, "d": 2})

N_POINTS = 96
TRIALS_PER_POINT = 2
REPEATS = 5

THRESHOLD_GRAPH = mesh([6, 6])
THRESHOLD_TRIALS = 32
THRESHOLD_TOL = 0.0005
THRESHOLD_LADDER = 3
THRESHOLD_SEEDS = (41, 42, 43, 44)


def _groups():
    probs = [0.05 + 0.9 * i / (N_POINTS - 1) for i in range(N_POINTS)]
    return [
        [
            ScenarioSpec(
                graph=TORUS,
                fault=FaultSpec("random_node", {"p": round(p, 6)}),
                analysis=MEASURE_ONLY,
                seed=1000 * i + t,
            )
            for t in range(TRIALS_PER_POINT)
        ]
        for i, p in enumerate(probs)
    ]


def _payload(r):
    return {k: v for k, v in r.to_dict().items() if k != "timings"}


def _best(fn, repeats=REPEATS):
    """(best wall-clock seconds, last return value) over ``repeats`` runs."""
    best, value = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def test_bench_multipoint_stacking(results_dir, capsys):
    groups = _groups()

    def per_point():
        sess = Session()  # fresh: no baseline/graph cache carry-over
        return [sess.run_trials_batched(g) for g in groups]

    def stacked():
        return Session().run_points_batched(groups)

    # warm once (imports, generator cache) before timing either side
    per_point(), stacked()
    solo_s, solo = _best(per_point)
    stack_s, stack = _best(stacked)

    assert [[_payload(r) for r in rs] for rs in stack] == [
        [_payload(r) for r in rs] for rs in solo
    ], "stacked records must be bit-identical to per-point records"

    speedup = solo_s / stack_s

    def threshold_workload(ladder):
        return [
            estimate_critical_probability(
                THRESHOLD_GRAPH,
                mode="site",
                n_trials=THRESHOLD_TRIALS,
                tol=THRESHOLD_TOL,
                seed=seed,
                ladder=ladder,
            )
            for seed in THRESHOLD_SEEDS
        ]

    threshold_workload(1), threshold_workload(THRESHOLD_LADDER)  # warm
    bisect_s, bisect_ests = _best(lambda: threshold_workload(1), repeats=7)
    ladder_s, ladder_ests = _best(
        lambda: threshold_workload(THRESHOLD_LADDER), repeats=7
    )
    t_speedup = bisect_s / ladder_s
    for est in ladder_ests:
        assert est.width <= THRESHOLD_TOL or est.n_probes >= 30
    for a, b in zip(bisect_ests, ladder_ests):
        # independent Monte-Carlo schedules: brackets must land close
        assert abs(a.midpoint - b.midpoint) < 0.1

    record = {
        "multipoint": {
            "points": N_POINTS,
            "trials_per_point": TRIALS_PER_POINT,
            "per_point_s": round(solo_s, 6),
            "stacked_s": round(stack_s, 6),
            "speedup": round(speedup, 3),
            "required": 3.0,
        },
        "threshold": {
            "graph": "mesh 6x6",
            "n_trials": THRESHOLD_TRIALS,
            "tol": THRESHOLD_TOL,
            "ladder": THRESHOLD_LADDER,
            "seeds": list(THRESHOLD_SEEDS),
            "bisection_s": round(bisect_s, 6),
            "bisection_probes": sum(e.n_probes for e in bisect_ests),
            "ladder_s": round(ladder_s, 6),
            "ladder_probes": sum(e.n_probes for e in ladder_ests),
            "speedup": round(t_speedup, 3),
            "required": 2.0,
        },
    }
    (results_dir / "BENCH_multipoint.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )
    with capsys.disabled():
        print(f"\nmulti-point stacking: {solo_s*1e3:.1f} ms per-point -> "
              f"{stack_s*1e3:.1f} ms stacked ({speedup:.1f}x, need >= 3x)")
        print(f"threshold ladder:     {bisect_s*1e3:.1f} ms bisection -> "
              f"{ladder_s*1e3:.1f} ms ladder over {len(THRESHOLD_SEEDS)} seeds "
              f"({t_speedup:.1f}x, need >= 2x)")

    assert speedup >= 3.0, f"multi-point stacking speedup {speedup:.2f}x < 3x"
    assert t_speedup >= 2.0, f"threshold ladder speedup {t_speedup:.2f}x < 2x"
