"""E10 — Section 4 open problem: span of butterfly / de Bruijn / S-E.

The paper conjectures these families have span O(1).  We provide the
experimental companion: sampled span ratios across a size step per family.
Flat maxima (no growth with n) are consistent with the conjecture; the mesh
rows calibrate the method against the known ≤ 2 bound.
"""

from repro.core.experiments import experiment_e10_open_problem_span


def test_bench_e10_open_problem_span(benchmark, report_table):
    rows = benchmark.pedantic(
        lambda: experiment_e10_open_problem_span(seed=0, n_samples=30),
        rounds=1,
        iterations=1,
    )
    report_table(
        "e10_open_problem_span",
        rows,
        title="E10 (§4 open problem): sampled span of butterfly/deBruijn/S-E",
    )
    # sampled spans bounded by a small constant for every family
    assert all(r["span_max"] <= 4.0 for r in rows)
    # no blow-up across the size step within any family
    by_family = {}
    for r in rows:
        by_family.setdefault(r["family"], []).append(r["span_max"])
    for family, maxima in by_family.items():
        assert max(maxima) <= 2.0 * min(maxima) + 1.0, (
            f"span grew sharply with size for {family} — inconsistent with O(1)"
        )
