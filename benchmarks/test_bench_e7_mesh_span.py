"""E7 — Theorem 3.6 / Lemma 3.7: the d-dimensional mesh has span ≤ 2.

Exact spans by compact-set enumeration on small meshes; the constructive
virtual-edge tree ratio on sampled compact sets of large meshes (2-D to
4-D); Lemma 3.7's virtual-graph connectivity verified on every sample.
"""

from repro.core.experiments import experiment_e7_mesh_span


def test_bench_e7_mesh_span(benchmark, report_table):
    rows = benchmark.pedantic(
        lambda: experiment_e7_mesh_span(seed=0, n_samples=40), rounds=1, iterations=1
    )
    report_table(
        "e7_mesh_span",
        rows,
        title="E7 (Theorem 3.6): mesh span ≤ 2, exact + constructive",
    )
    assert all(r["ok"] for r in rows), "a span ratio exceeded 2"
    assert all(r["virtual_connected_rate"] == 1.0 for r in rows), (
        "Lemma 3.7 connectivity failed on a sample"
    )
    assert all(r["span"] >= 1.0 for r in rows if r["method"] == "exact-enumeration")
