"""Batch-engine benchmark: run_batch throughput and baseline deduplication.

Times a 24-scenario sweep (one shared torus graph, random faults at three
probabilities) through ``repro.api.run_batch``.  The interesting numbers are
the serial-vs-parallel ratio and the effect of the baseline cache: all 24
scenarios share one graph spec, so the batch pays for exactly one fault-free
expansion estimate.
"""

from repro.api import AnalysisSpec, FaultSpec, GraphSpec, ScenarioSpec
from repro.api.engine import run, run_batch


def _specs(n=24):
    return [
        ScenarioSpec(
            graph=GraphSpec("torus", {"sides": 16, "d": 2}),
            fault=FaultSpec("random_node", {"p": (0.02, 0.05, 0.10)[s % 3]}),
            analysis=AnalysisSpec(mode="node"),
            seed=s,
            label=f"bench:{s}",
        )
        for s in range(n)
    ]


def test_bench_run_batch_serial(benchmark):
    results = benchmark.pedantic(
        lambda: run_batch(_specs(), workers=1), rounds=1, iterations=1
    )
    assert len(results) == 24
    assert len({r.baseline_expansion for r in results}) == 1


def test_bench_run_batch_parallel(benchmark):
    results = benchmark.pedantic(
        lambda: run_batch(_specs(), workers=4), rounds=1, iterations=1
    )
    assert len(results) == 24


def test_bench_single_run_uncached(benchmark):
    result = benchmark.pedantic(
        lambda: run(_specs(1)[0]), rounds=1, iterations=1
    )
    assert result.n_original == 256
