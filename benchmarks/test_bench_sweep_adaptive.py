"""Adaptive sampling vs fixed allocation on an e5-style disintegration sweep.

The claim the sweep layer has to earn: a ``ci_width`` policy reproduces the
fixed-allocation γ(p) curve *within confidence intervals* while spending
measurably fewer trials, because tight grid points (deep subcritical /
supercritical) stop early and the budget concentrates on the noisy
transition region.
"""

from repro.api.session import Session
from repro.api.specs import AnalysisSpec, FaultSpec, GraphSpec, ScenarioSpec
from repro.api.sweeps import Axis, SamplingPolicy, SweepSpec, run_sweep

#: Fault probabilities spanning the torus's disintegration curve: the ends
#: are low-variance, the middle straddles the noisy transition.
P_VALUES = (0.05, 0.15, 0.30, 0.45, 0.60)
TRIALS_CAP = 30
TARGET_HALFWIDTH = 0.025


def _sweep(policy: SamplingPolicy) -> SweepSpec:
    return SweepSpec(
        base=ScenarioSpec(
            graph=GraphSpec("torus", {"sides": 20, "d": 2}),
            fault=FaultSpec("random_node", {"p": P_VALUES[0]}),
            analysis=AnalysisSpec(mode="node", pruner=None, measure_expansion=False),
        ),
        axes=(Axis("fault.params.p", P_VALUES),),
        trials=TRIALS_CAP,
        seed=2004,
        metrics=("gamma",),
        policy=policy,
        label="bench-adaptive",
    )


def _run_pair():
    fixed = run_sweep(_sweep(SamplingPolicy()), Session())
    adaptive = run_sweep(
        _sweep(
            SamplingPolicy(
                kind="ci_width",
                target=TARGET_HALFWIDTH,
                min_trials=5,
                chunk=5,
            )
        ),
        Session(),
    )
    return fixed, adaptive


def test_bench_sweep_adaptive(benchmark, report_table):
    fixed, adaptive = benchmark.pedantic(_run_pair, rounds=1, iterations=1)

    rows = []
    for pf, pa in zip(fixed.points, adaptive.points):
        sf, sa = pf.stats["gamma"], pa.stats["gamma"]
        rows.append(
            {
                "p": pf.coord_dict()["fault.params.p"],
                "fixed_trials": pf.n_trials,
                "fixed_gamma": round(sf.mean, 4),
                "fixed_hw": round(sf.halfwidth, 4),
                "adaptive_trials": pa.n_trials,
                "adaptive_gamma": round(sa.mean, 4),
                "adaptive_hw": round(sa.halfwidth, 4),
            }
        )
    rows.append(
        {
            "p": "TOTAL",
            "fixed_trials": fixed.total_trials,
            "fixed_gamma": "",
            "fixed_hw": "",
            "adaptive_trials": adaptive.total_trials,
            "adaptive_gamma": "",
            "adaptive_hw": "",
        }
    )
    report_table(
        "sweep_adaptive",
        rows,
        title="Adaptive (ci_width) vs fixed allocation — γ(p) disintegration",
    )

    # measurably fewer trials: at least a quarter of the budget saved
    assert adaptive.total_trials <= 0.75 * fixed.total_trials, (
        f"adaptive spent {adaptive.total_trials} of {fixed.total_trials}"
    )
    for pf, pa in zip(fixed.points, adaptive.points):
        sf, sa = pf.stats["gamma"], pa.stats["gamma"]
        # every adaptive point either reached the target width or its cap
        assert sa.halfwidth <= TARGET_HALFWIDTH + 1e-9 or pa.n_trials == TRIALS_CAP
        # and its estimate agrees with the fixed curve within the joint CI
        assert abs(sa.mean - sf.mean) <= sa.halfwidth + sf.halfwidth + 1e-9
