"""Adaptive sampling three ways on an e5-style disintegration sweep.

The claim the sweep layer has to earn (ROADMAP item 5): the stateful
allocators reproduce the fixed-allocation γ(p) curve *within confidence
intervals* at a fraction of the trials.  Three policies run the same
grid:

* ``ci_width`` — the PR3 baseline: tighten every point to ``target``;
* ``cluster`` — bootstrap, cluster points by observed response, spend
  only on cluster representatives and map results back;
* ``transition`` — fit the curve online and concentrate trials where
  predicted |dγ/dp| × CI half-width peaks, relaxing width targets on
  plateaus and where a tighter CI could not move the fitted curve by
  more than one grid step.

The pinned win: ``transition`` needs at most **half** the trials
``ci_width`` does (in practice ~1/3, and ~1/6 of fixed) while every
point still agrees with the fixed curve within the joint CI.  The
comparison is written to ``benchmarks/results/BENCH_adaptive.json``
(uploaded as a CI artifact) so the trajectory of that ratio is tracked.
"""

import json

from repro.api.session import Session
from repro.api.specs import AnalysisSpec, FaultSpec, GraphSpec, ScenarioSpec
from repro.api.sweeps import Axis, SamplingPolicy, SweepSpec, run_sweep

#: Fault probabilities spanning the torus's disintegration curve: the ends
#: are low-variance plateaus, the middle straddles the noisy transition.
P_VALUES = (0.05, 0.12, 0.20, 0.30, 0.40, 0.45, 0.50, 0.60, 0.75)
TRIALS_CAP = 40
TARGET_HALFWIDTH = 0.025
#: Cluster members inherit their representative's stats; their agreement
#: slack is the clustering resolution (means within 2 × target merge).
CLUSTER_TOL = 2.0 * TARGET_HALFWIDTH


def _sweep(policy: SamplingPolicy) -> SweepSpec:
    return SweepSpec(
        base=ScenarioSpec(
            graph=GraphSpec("torus", {"sides": 20, "d": 2}),
            fault=FaultSpec("random_node", {"p": P_VALUES[0]}),
            analysis=AnalysisSpec(mode="node", pruner=None, measure_expansion=False),
        ),
        axes=(Axis("fault.params.p", P_VALUES),),
        trials=TRIALS_CAP,
        seed=2004,
        metrics=("gamma",),
        policy=policy,
        label="bench-adaptive",
    )


def _adaptive(kind: str) -> SamplingPolicy:
    return SamplingPolicy(
        kind=kind, target=TARGET_HALFWIDTH, min_trials=5, chunk=5
    )


def _run_all():
    results = {"fixed": run_sweep(_sweep(SamplingPolicy()), Session())}
    for kind in ("ci_width", "cluster", "transition"):
        results[kind] = run_sweep(_sweep(_adaptive(kind)), Session())
    return results


def _agreement_slack(point) -> float:
    return CLUSTER_TOL if point.provenance == "cluster" else 0.0


def test_bench_sweep_adaptive(benchmark, report_table, results_dir):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    fixed = results["fixed"]

    rows = []
    for idx, pf in enumerate(fixed.points):
        sf = pf.stats["gamma"]
        row = {
            "p": pf.coord_dict()["fault.params.p"],
            "fixed_trials": pf.n_trials,
            "fixed_gamma": round(sf.mean, 4),
            "fixed_hw": round(sf.halfwidth, 4),
        }
        for kind in ("ci_width", "cluster", "transition"):
            pa = results[kind].points[idx]
            sa = pa.stats["gamma"]
            row[f"{kind}_trials"] = pa.n_trials
            row[f"{kind}_gamma"] = round(sa.mean, 4)
        rows.append(row)
    totals = {"p": "TOTAL", "fixed_trials": fixed.total_trials,
              "fixed_gamma": "", "fixed_hw": ""}
    for kind in ("ci_width", "cluster", "transition"):
        totals[f"{kind}_trials"] = results[kind].total_trials
        totals[f"{kind}_gamma"] = ""
    rows.append(totals)
    report_table(
        "sweep_adaptive",
        rows,
        title="Adaptive allocation three ways — γ(p) disintegration",
    )

    record = {
        "p_values": list(P_VALUES),
        "trials_cap": TRIALS_CAP,
        "target_halfwidth": TARGET_HALFWIDTH,
        "totals": {k: r.total_trials for k, r in results.items()},
        "rounds": {k: r.rounds for k, r in results.items()},
        "ratio_vs_ci_width": {
            k: round(
                results[k].total_trials / results["ci_width"].total_trials, 4
            )
            for k in ("cluster", "transition")
        },
        "ratio_vs_fixed": {
            k: round(results[k].total_trials / fixed.total_trials, 4)
            for k in ("ci_width", "cluster", "transition")
        },
        "fingerprints": {k: r.fingerprint() for k, r in results.items()},
    }
    (results_dir / "BENCH_adaptive.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )

    ci_width = results["ci_width"]
    # the baseline itself must beat fixed (the PR3 claim still holds)
    assert ci_width.total_trials <= 0.75 * fixed.total_trials
    # the pinned win: transition needs at most half the ci_width trials
    transition = results["transition"]
    assert transition.total_trials <= 0.5 * ci_width.total_trials, (
        f"transition spent {transition.total_trials} "
        f"of ci_width's {ci_width.total_trials}"
    )
    # cluster never exceeds the baseline's spend
    assert results["cluster"].total_trials <= ci_width.total_trials
    # every policy reproduces the fixed γ(p) curve within the joint CI
    # (cluster-mapped members get the clustering-resolution slack)
    for kind in ("ci_width", "cluster", "transition"):
        for pa, pf in zip(results[kind].points, fixed.points):
            sa, sf = pa.stats["gamma"], pf.stats["gamma"]
            assert abs(sa.mean - sf.mean) <= (
                sa.halfwidth + sf.halfwidth + _agreement_slack(pa) + 1e-9
            ), (
                f"{kind} p={pa.coord_dict()['fault.params.p']} diverges "
                f"from the fixed curve"
            )
