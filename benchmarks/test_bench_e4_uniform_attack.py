"""E4 — Theorem 2.5: shattering uniform-expansion graphs.

The recursive-bisection process breaks tori into < ε·n pieces with a fault
count under the O(log(1/ε)/ε·α(n)·n) bound; the geometric axis attack gives
the well-tuned comparison point.
"""

from repro.core.experiments import experiment_e4_uniform_attack


def test_bench_e4_uniform_attack(benchmark, report_table):
    rows = benchmark.pedantic(
        lambda: experiment_e4_uniform_attack(seed=0), rounds=1, iterations=1
    )
    report_table(
        "e4_uniform_attack",
        rows,
        title="E4 (Theorem 2.5): shattering uniform-expansion tori",
    )
    assert all(r["generic_ok"] for r in rows), "generic attack exceeded theorem bound"
    assert all(r["generic_largest_frac"] <= r["eps"] + 0.01 for r in rows)
    assert all(r["axis_largest_frac"] <= r["eps"] + 0.01 for r in rows)
