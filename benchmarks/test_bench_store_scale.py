"""Store-scale benchmark: warm open of a 50k-entry store vs linear scan.

Builds a store of ~50k synthetic results (one real scenario execution,
cloned across seeds — the spec hash and fingerprint stay self-consistent,
the physics is just repeated), then pins the acceptance bar of the PR-7
storage engine: opening the store warm and serving stats plus a lookup
must beat the legacy cold-open behaviour — parse every record, rebuild
every RunResult, verify every fingerprint — by >=10x.  The warm path reads
only the shard offset indexes; exactly one record is decoded (the lookup).
"""

import dataclasses
import time

from repro.api import AnalysisSpec, FaultSpec, GraphSpec, ScenarioSpec
from repro.api.engine import run
from repro.api.specs import RunResult
from repro.api.store import ResultStore

N_ENTRIES = 50_000


def _base_spec(seed=0):
    return ScenarioSpec(
        graph=GraphSpec("torus", {"sides": 8, "d": 2}),
        fault=FaultSpec("random_node", {"p": 0.1}),
        analysis=AnalysisSpec(),
        seed=seed,
    )


def _synthetic_results(n):
    """n distinct-keyed results cloned from one real execution."""
    template = run(_base_spec())
    out = []
    for s in range(n):
        spec = dataclasses.replace(template.spec, seed=s)
        out.append(dataclasses.replace(template, spec=spec, seed=s))
    return out


def _linear_scan(store):
    """The legacy cold-open cost model: decode + key-check + fingerprint-
    verify every record (what ``ResultStore`` did before the engine)."""
    import json

    n = 0
    for _key, raw in store.engine.iter_raw("results"):
        record = json.loads(raw)
        result = RunResult.from_dict(record["result"])
        assert record["key"] == result.spec.hash()
        assert record["fingerprint"] == result.fingerprint()
        n += 1
    return n


def test_bench_store_scale_warm_open(benchmark, tmp_path):
    path = tmp_path / "store"
    store = ResultStore(path)
    results = _synthetic_results(N_ENTRIES)
    store.put_results(results)
    probe = results[N_ENTRIES // 2]

    t0 = time.perf_counter()
    assert _linear_scan(store) == N_ENTRIES
    linear_s = time.perf_counter() - t0

    def warm_open():
        warm = ResultStore(path)
        stats = warm.stats()
        assert stats.results == N_ENTRIES
        assert stats.corrupt == 0
        cached = warm.get_result(probe.spec)
        assert cached.fingerprint() == probe.fingerprint()
        return warm

    t0 = time.perf_counter()
    warm = warm_open()
    warm_s = time.perf_counter() - t0

    # Stats came from the indexes: only the probe lookup decoded a record.
    assert warm.counters.get("records_decoded") == 1
    speedup = linear_s / warm_s
    assert speedup >= 10, (
        f"warm open too slow: linear scan {linear_s:.3f}s / warm {warm_s:.3f}s "
        f"= {speedup:.1f}x (acceptance floor: 10x)"
    )

    # Recorded number: the steady-state warm open (fresh instance each
    # round, so every iteration re-reads the sidecar indexes from disk).
    benchmark.pedantic(warm_open, rounds=3, iterations=1)
