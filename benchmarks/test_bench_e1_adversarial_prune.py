"""E1 — Theorem 2.1: Prune under adversarial faults (paper §2).

Regenerates the theorem's two guarantees across graphs, k, and fault
budgets: ``|H| ≥ n − k·f/α`` and ``α(H) ≥ (1 − 1/k)·α``.
"""

from repro.core.experiments import experiment_e1_adversarial_prune


def test_bench_e1_adversarial_prune(benchmark, report_table):
    rows = benchmark.pedantic(
        lambda: experiment_e1_adversarial_prune(seed=0), rounds=1, iterations=1
    )
    report_table(
        "e1_adversarial_prune",
        rows,
        title="E1 (Theorem 2.1): Prune guarantees under adversarial faults",
    )
    assert rows, "experiment produced no rows"
    assert all(r["size_ok"] for r in rows), "size guarantee |H| >= n - k f/alpha failed"
    assert all(r["alpha_ok"] for r in rows), "expansion guarantee (1-1/k)alpha failed"
