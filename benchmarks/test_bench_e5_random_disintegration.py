"""E5 — Theorem 3.1 / §3.1: random faults at p = Θ(α).

The paper's headline contrast: chain graphs disintegrate at a small constant
multiple of their expansion, while the torus — whose expansion is *much*
smaller than its real fault tolerance — survives the same relative budget.
Expansion alone is a weak predictor under random faults.
"""

from repro.core.experiments import experiment_e5_random_disintegration


def test_bench_e5_random_disintegration(benchmark, report_table):
    rows = benchmark.pedantic(
        lambda: experiment_e5_random_disintegration(seed=0, n_trials=10),
        rounds=1,
        iterations=1,
    )
    report_table(
        "e5_random_disintegration",
        rows,
        title="E5 (Theorem 3.1): γ vs p/α — chain graph dies, torus survives",
    )
    chain4 = [r for r in rows if r["graph"].startswith("chain") and r["p_over_alpha"] == 4.0]
    torus1 = [r for r in rows if r["graph"].startswith("torus") and r["p_over_alpha"] == 1.0]
    assert chain4 and torus1
    assert chain4[0]["gamma_mean"] < 0.35, "chain graph failed to disintegrate at 4α"
    assert torus1[0]["gamma_mean"] > 0.6, "torus unexpectedly collapsed at p = α"
    # monotone decay in p for each graph
    for label in {r["graph"] for r in rows}:
        series = [r["gamma_mean"] for r in rows if r["graph"] == label]
        assert series == sorted(series, reverse=True)
