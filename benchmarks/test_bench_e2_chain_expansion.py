"""E2 — Claim 2.4: chain-replacement graphs have expansion Θ(1/k).

The regenerated series shows α(H(G,k))·k staying within a constant band
while k quadruples, and α below the claim's 2/k witness bound.
"""

from repro.core.experiments import experiment_e2_chain_expansion


def test_bench_e2_chain_expansion(benchmark, report_table):
    rows = benchmark.pedantic(
        lambda: experiment_e2_chain_expansion(seed=0), rounds=1, iterations=1
    )
    report_table(
        "e2_chain_expansion",
        rows,
        title="E2 (Claim 2.4): chain-replacement expansion is Θ(1/k)",
    )
    assert all(r["upper_ok"] for r in rows)
    products = [r["alpha_times_k"] for r in rows]
    assert max(products) <= 4 * min(products), "alpha*k not flat: not Θ(1/k)"
