"""Session-cache benchmark: cold execution vs warm store reads.

Runs a 24-scenario sweep (one shared torus graph, random faults at three
probabilities) through a store-backed :class:`repro.api.session.Session`
twice.  The cold pass executes every scenario and appends it to the store;
the warm pass must be pure deserialisation — zero engine calls — and the
assertion pins the acceptance bar of a >=10x speedup so cache regressions
show up in the perf trajectory.
"""

import time

from repro.api import AnalysisSpec, FaultSpec, GraphSpec, ScenarioSpec
from repro.api.session import Session


def _specs(n=24):
    return [
        ScenarioSpec(
            graph=GraphSpec("torus", {"sides": 16, "d": 2}),
            fault=FaultSpec("random_node", {"p": (0.02, 0.05, 0.10)[s % 3]}),
            analysis=AnalysisSpec(mode="node"),
            seed=s,
            label=f"bench:{s}",
        )
        for s in range(n)
    ]


def test_bench_session_cache_cold_vs_warm(benchmark, tmp_path):
    store = tmp_path / "store"
    specs = _specs()

    t0 = time.perf_counter()
    cold = Session(store).run_batch(specs)
    cold_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm_session = Session(store)
    warm = warm_session.run_batch(specs)
    warm_s = time.perf_counter() - t0

    assert warm_session.hits == 24 and warm_session.misses == 0
    assert [r.fingerprint() for r in warm] == [r.fingerprint() for r in cold]
    assert cold_s / warm_s >= 10, (
        f"warm cache speedup collapsed: cold {cold_s:.3f}s / warm {warm_s:.3f}s "
        f"= {cold_s / warm_s:.1f}x (acceptance floor: 10x)"
    )

    # Recorded number: the steady-state warm read (fresh Session each round,
    # so every iteration re-parses the store from disk).
    results = benchmark.pedantic(
        lambda: Session(store).run_batch(specs), rounds=3, iterations=1
    )
    assert len(results) == 24


def test_bench_session_run_iter_streaming(benchmark, tmp_path):
    """Time-to-first-result of the streaming path on a cold store."""
    specs = _specs(8)

    def first_result():
        session = Session(tmp_path / f"s{time.monotonic_ns()}")
        stream = session.run_iter(specs)
        first = next(stream)
        stream.close()
        return first

    result = benchmark.pedantic(first_result, rounds=1, iterations=1)
    assert result.seed == 0
