"""Batched trial engine benchmark: mask-matrix batches vs scalar engine calls.

Runs an E3/E5-style sweep — a chain-replacement graph (Theorem 2.3's
subject) under random node faults at three expansion-relative
probabilities, 60 Monte-Carlo trials per point — once through the scalar
per-trial engine and once through the batched ``(T × n)`` mask-matrix
path.  Two acceptance bars are pinned:

* **equivalence** — the sweep fingerprints (content hashes over every
  per-trial result) must be identical, i.e. batching is invisible in the
  numbers;
* **performance** — the batched pass must be >= 5x faster wall-clock
  (measured ~7x at authoring time), so hot-path regressions in the
  mask-parallel kernels show up in the perf trajectory.
"""

import time

from repro.api import AnalysisSpec, FaultSpec, GraphSpec, ScenarioSpec
from repro.api.session import Session
from repro.api.sweeps import Axis, SweepSpec, run_sweep


def _sweep(trials=60):
    chain = GraphSpec(
        "chain_replacement",
        {"base": GraphSpec("expander", {"n": 48, "degree": 4, "seed": 3}), "k": 8},
    )
    return SweepSpec(
        base=ScenarioSpec(
            graph=chain,
            fault=FaultSpec("random_node", {"p": 0.02}),
            analysis=AnalysisSpec(pruner=None, measure_expansion=False),
        ),
        axes=(Axis("fault.params.p", (0.02, 0.05, 0.10)),),
        trials=trials,
        seed=7,
        metrics=("gamma",),
        label="bench-batched",
    )


def test_bench_batched_vs_scalar_trials(benchmark):
    sweep = _sweep()

    t0 = time.perf_counter()
    scalar = run_sweep(sweep, Session(batch=False))
    scalar_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched = run_sweep(sweep, Session(batch=True))
    batched_s = time.perf_counter() - t0

    assert batched.total_trials == scalar.total_trials == 180
    assert batched.fingerprint() == scalar.fingerprint(), (
        "batched execution changed the sweep's content fingerprint — the "
        "scalar-equivalence contract is broken"
    )
    assert scalar_s / batched_s >= 5, (
        f"batched speedup collapsed: scalar {scalar_s:.3f}s / batched "
        f"{batched_s:.3f}s = {scalar_s / batched_s:.1f}x (acceptance floor: 5x)"
    )

    # Recorded number: the steady-state batched sweep.
    result = benchmark.pedantic(
        lambda: run_sweep(sweep, Session(batch=True)), rounds=3, iterations=1
    )
    assert result.fingerprint() == scalar.fingerprint()
