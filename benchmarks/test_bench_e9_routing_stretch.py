"""E9 — Section 4: routing and load-balancing consequences of pruning.

After random faults + Prune, the surviving component keeps (a) pairwise
stretch far below the O(α⁻¹·log n) distance bound and (b) diffusion
load-balancing speed within a small factor of the fault-free network —
the two §1.3 applications that motivate preserving expansion.
"""

from repro.core.experiments import experiment_e9_routing


def test_bench_e9_routing_stretch(benchmark, report_table):
    rows = benchmark.pedantic(
        lambda: experiment_e9_routing(seed=0), rounds=1, iterations=1
    )
    report_table(
        "e9_routing_stretch",
        rows,
        title="E9 (§4): stretch and load balancing after faults + pruning",
    )
    assert rows
    for r in rows:
        assert r["stretch_max"] <= r["dist_bound_O(a^-1 logn)"], (
            "stretch exceeded the expansion-distance bound"
        )
        assert r["diffusion_rounds_H"] <= 6 * max(r["diffusion_rounds_base"], 1), (
            "pruned network balances load much slower than baseline"
        )
        assert r["survivor_frac"] > 0.5
