"""Adaptive sweeps: CI-driven trial allocation over a disintegration curve.

An e5-style experiment — γ(p) for a torus under random node faults — run
three ways through the first-class sweep layer (:mod:`repro.api.sweeps`):

1. **fixed** allocation: the classic "N trials per grid point";
2. **ci_width** (adaptive): every point keeps sampling until its 95% CI
   half-width drops below a target, so low-variance points stop early and
   the budget concentrates on the noisy transition region;
3. **resumed**: the same adaptive sweep re-run against a store — every
   trial is served from disk, and the final fingerprint is identical to
   the uninterrupted run (resume granularity is the *trial*, not the
   sweep);
4. **transition** (stateful): fit the γ(p) curve online and concentrate
   trials where predicted |slope| × CI half-width peaks — plateaus get a
   relaxed width target and stop at the bootstrap.

Run with ``PYTHONPATH=src python examples/adaptive_sweep.py``.
"""

import dataclasses
import tempfile

from repro.api import (
    AnalysisSpec,
    Axis,
    FaultSpec,
    GraphSpec,
    SamplingPolicy,
    ScenarioSpec,
    Session,
    SweepSpec,
    run_sweep,
)
from repro.util.tables import format_row_dicts


def build_sweep(policy: SamplingPolicy) -> SweepSpec:
    """γ(p) on a 16×16 torus: five fault levels spanning the transition."""
    return SweepSpec(
        base=ScenarioSpec(
            graph=GraphSpec("torus", {"sides": 16, "d": 2}),
            fault=FaultSpec("random_node", {"p": 0.05}),
            analysis=AnalysisSpec(mode="node", pruner=None, measure_expansion=False),
        ),
        axes=(Axis("fault.params.p", (0.05, 0.2, 0.35, 0.5, 0.65)),),
        trials=24,  # per-point count (fixed) / cap (ci_width)
        seed=11,
        metrics=("gamma",),
        policy=policy,
        label="gamma-curve",
    )


def main() -> None:
    # -- 1. fixed: every point pays the full 24 trials ------------------- #
    fixed = run_sweep(build_sweep(SamplingPolicy()), Session())
    print(f"fixed allocation: {fixed.total_trials} trials\n")

    # -- 2. adaptive: stop each point at CI half-width <= 0.03 ------------ #
    adaptive_spec = build_sweep(
        SamplingPolicy(kind="ci_width", target=0.03, min_trials=6, chunk=6)
    )
    with tempfile.TemporaryDirectory() as store_dir:
        adaptive = run_sweep(adaptive_spec, Session(store_dir))
        print(
            f"adaptive allocation: {adaptive.total_trials} trials in "
            f"{adaptive.rounds} rounds — "
            f"{fixed.total_trials - adaptive.total_trials} saved\n"
        )
        rows = []
        for pf, pa in zip(fixed.points, adaptive.points):
            sf, sa = pf.stats["gamma"], pa.stats["gamma"]
            rows.append(
                {
                    "p": pf.coord_dict()["fault.params.p"],
                    "fixed_n": pf.n_trials,
                    "fixed_gamma": round(sf.mean, 4),
                    "adaptive_n": pa.n_trials,
                    "adaptive_gamma": round(sa.mean, 4),
                    "adaptive_hw": round(sa.halfwidth, 4),
                }
            )
        print(format_row_dicts(rows, title="fixed vs adaptive γ(p)"))

        # -- 3. resume: warm store, zero executions, same fingerprint ----- #
        warm_session = Session(store_dir)
        replay = run_sweep(adaptive_spec, warm_session)
        assert warm_session.misses == 0
        assert replay.fingerprint() == adaptive.fingerprint()
        print(
            f"\nwarm replay: {warm_session.hits} trials served from the "
            f"store, 0 computed — fingerprint {replay.fingerprint()} identical"
        )

    # -- 4. transition: spend only where the fitted curve is steep -------- #
    # A wider grid with plateau ends: the allocator fits gamma(p) online,
    # relaxes the width target on the flat ends, and spends its chunks
    # inside the disintegration band.
    curve_spec = dataclasses.replace(
        build_sweep(
            SamplingPolicy(kind="transition", target=0.025, min_trials=6, chunk=6)
        ),
        axes=(
            Axis("fault.params.p", (0.05, 0.12, 0.3, 0.4, 0.45, 0.5, 0.6, 0.75)),
        ),
    )
    curve = run_sweep(curve_spec, Session())
    per_point = ", ".join(str(p.n_trials) for p in curve.points)
    print(
        f"\ntransition allocation: {curve.total_trials} trials "
        f"([{per_point}] per point) — the chunks land on the steep band"
    )


if __name__ == "__main__":
    main()
