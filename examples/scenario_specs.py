#!/usr/bin/env python
"""Declarative scenarios: describe experiments as data, run them as a batch.

The scenario API (``repro.api``) turns the library's fault-tolerance
pipeline into three serialisable records — graph, fault, analysis — plus a
seed.  This example builds a 40-scenario sweep (two topologies × two fault
models × seeds), runs it across worker processes with baseline expansion
estimates deduplicated per graph, and shows the JSON form that
``python -m repro run-batch`` accepts.

Run:  python examples/scenario_specs.py
"""

import json

from repro.api import (
    AnalysisSpec,
    FaultSpec,
    GraphSpec,
    ScenarioSpec,
    run,
    run_batch,
)
from repro.util.tables import format_row_dicts


def main() -> None:
    torus = GraphSpec("torus", {"sides": 12, "d": 2})
    expander = GraphSpec("expander", {"n": 128, "degree": 4, "seed": 99})

    # -- one scenario, fully declarative --------------------------------- #
    single = ScenarioSpec(
        graph=torus,
        fault=FaultSpec("random_node", {"p": 0.08}),
        analysis=AnalysisSpec(mode="node", pruner="prune", epsilon=0.5),
        seed=7,
        label="torus @ p=0.08",
    )
    print("A scenario is just JSON:")
    print(json.dumps(single.to_dict(), indent=2)[:400], "...\n")

    result = run(single)
    print(f"run() -> |H|={result.n_surviving}/{result.n_original}, "
          f"retention={result.expansion_retention:.3f}, "
          f"hash={result.spec_hash}\n")

    # -- a 40-scenario sweep through run_batch ---------------------------- #
    specs = [
        ScenarioSpec(
            graph=graph,
            fault=FaultSpec(model, params),
            analysis=AnalysisSpec(mode="node"),
            seed=seed,
            label=f"{graph.generator}:{model}",
        )
        for graph in (torus, expander)
        for model, params in (
            ("random_node", {"p": 0.05}),
            ("separator", {"budget": 6}),
        )
        for seed in range(10)
    ]
    results = run_batch(specs, workers=4)
    # Aggregate per (graph, fault model): the per-spec baselines were
    # computed once per graph, not once per scenario.
    rows = []
    for label in sorted({r.label for r in results}):
        group = [r for r in results if r.label == label]
        rows.append(
            {
                "scenario": label,
                "runs": len(group),
                "mean_H_frac": round(
                    sum(r.surviving_fraction for r in group) / len(group), 4
                ),
                "alpha_G": round(group[0].baseline_expansion, 4),
            }
        )
    print(format_row_dicts(rows, title="40-scenario batch (4 workers)"))

    # -- reproducibility: same (spec, seed) -> same fingerprint ----------- #
    again = run(single)
    assert again.fingerprint() == result.fingerprint()
    print("\nreplayed fingerprint matches:", again.fingerprint())


if __name__ == "__main__":
    main()
