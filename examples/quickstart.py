#!/usr/bin/env python
"""Quickstart: inject faults into a network, prune, and read the report.

This walks the library's primary flow (the question the paper asks):

    How many faults can a network sustain so that it still contains a
    linear-sized subnetwork with approximately the same expansion?

We build a 2-D torus (the CAN-style topology of the paper's Section 4),
subject it to random and adversarial faults at the same budget, and compare
what `Prune` can salvage in each case.

Run:  python examples/quickstart.py
"""

from repro.core import FaultExpansionAnalyzer
from repro.faults import separator_attack
from repro.graphs.generators import torus
from repro.util.tables import format_table


def main() -> None:
    network = torus(16, 2)  # 256 nodes, 4-regular
    analyzer = FaultExpansionAnalyzer(network, mode="node", epsilon=0.5)

    print(f"Network: {network.name} (n={network.n}, m={network.m})")
    baseline = analyzer.baseline_expansion
    print(
        f"Fault-free node expansion: {baseline.value:.4f} "
        f"(certified lower bound {baseline.lower:.4f}, method {baseline.method})\n"
    )

    # --- random faults at 5% ------------------------------------------- #
    report_random = analyzer.random_faults(p=0.05, seed=42)
    print(report_random.render())
    print()

    # --- an adversary with the same expected budget --------------------- #
    budget = report_random.scenario.f
    adversarial = separator_attack(network, budget)
    report_adv = analyzer.analyze_scenario(adversarial)
    print(report_adv.render())
    print()

    # --- side-by-side summary ------------------------------------------ #
    rows = [
        [
            "random",
            report_random.scenario.f,
            report_random.n_surviving,
            f"{report_random.surviving_fraction:.3f}",
            f"{report_random.expansion_retention:.3f}",
        ],
        [
            "adversarial (separator)",
            report_adv.scenario.f,
            report_adv.n_surviving,
            f"{report_adv.surviving_fraction:.3f}",
            f"{report_adv.expansion_retention:.3f}",
        ],
    ]
    print(
        format_table(
            ["fault model", "f", "|H|", "|H|/n", "α(H)/α(G)"],
            rows,
            title="Same budget, different adversaries",
        )
    )
    print(
        "\nTakeaway: pruning away the damaged fringe leaves a large component"
        "\nwhose expansion stays within a constant factor of the original —"
        "\nTheorem 2.1 in action."
    )


if __name__ == "__main__":
    main()
