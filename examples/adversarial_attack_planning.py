#!/usr/bin/env python
"""Adversarial attack planning: how attack strategy interacts with topology.

Section 2 of the paper is a duel: an adversary spends a fault budget to
destroy expansion; `Prune` salvages a well-expanding core.  Theorem 2.1 says
the adversary needs Ω(α·n) faults; Theorem 2.3 exhibits the topology (chain
graphs) where Θ(α·N) faults *shatter everything*.

This example pits four attack strategies against two topologies — a
4-regular expander (robust) and its chain-replacement (fragile) — at equal
budgets, and reports what survives pruning.

Run:  python examples/adversarial_attack_planning.py
"""

import numpy as np

from repro.core import FaultExpansionAnalyzer
from repro.faults import (
    chain_center_attack,
    degree_attack,
    random_attack,
    separator_attack,
)
from repro.graphs.generators import chain_replacement, expander
from repro.graphs.traversal import component_summary
from repro.util.tables import format_table


def attack_table(graph, budget, attacks, analyzer):
    rows = []
    for label, scenario in attacks:
        summary = component_summary(scenario.surviving)
        report = analyzer.analyze_scenario(scenario)
        rows.append(
            [
                label,
                scenario.f,
                summary.largest_size,
                f"{report.surviving_fraction:.3f}",
                f"{report.expansion_retention:.3f}",
            ]
        )
    return format_table(
        ["attack", "f", "largest comp", "|H|/n after prune", "α(H)/α(G)"],
        rows,
        title=f"{graph.name}: attack comparison at budget {budget}",
    )


def main() -> None:
    # --- robust topology: constant-degree expander ---------------------- #
    base = expander(128, 4, seed=1)
    analyzer = FaultExpansionAnalyzer(base, mode="node", epsilon=0.5)
    alpha = analyzer.baseline_expansion.value
    budget = max(4, int(0.05 * base.n))
    attacks = [
        ("random", random_attack(base, budget, seed=0)),
        ("highest-degree", degree_attack(base, budget)),
        ("separator (spectral)", separator_attack(base, budget)),
    ]
    print(f"expander α = {alpha:.4f}")
    print(attack_table(base, budget, attacks, analyzer))
    print()

    # --- fragile topology: the Theorem 2.3 chain graph ------------------ #
    cr = chain_replacement(expander(32, 4, seed=2), k=8)
    h_graph = cr.graph
    analyzer2 = FaultExpansionAnalyzer(h_graph, mode="node", epsilon=0.5)
    alpha2 = analyzer2.baseline_expansion.value
    budget2 = cr.base.m  # the paper's chain-centre budget (one per chain)
    attacks2 = [
        ("random", random_attack(h_graph, budget2, seed=3)),
        ("highest-degree", degree_attack(h_graph, budget2)),
        ("chain centres (Thm 2.3)", chain_center_attack(cr)),
    ]
    print(f"chain graph α = {alpha2:.4f}  (N = {h_graph.n}, budget = {budget2})")
    print(attack_table(h_graph, budget2, attacks2, analyzer2))
    print(
        "\nTakeaway: on the expander no strategy at the Θ(α·n) budget"
        "\ndestroys the prunable core (Theorem 2.1 protects it); on the chain"
        "\ngraph the structured chain-centre attack shatters the network into"
        "\nsublinear fragments exactly as Theorem 2.3 predicts — and no"
        "\npruning can help, because nothing large survives."
    )


if __name__ == "__main__":
    main()
