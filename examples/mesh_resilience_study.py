#!/usr/bin/env python
"""Mesh span and random-fault resilience (Theorems 3.4 + 3.6).

The span σ controls how much random fault probability a network tolerates:
``p ≤ 1/(2e·δ^{4σ})`` keeps a half-sized subnetwork with ε·αe edge expansion
(Theorem 3.4).  Theorem 3.6's geometric construction proves σ(mesh) ≤ 2.

This study (a) *measures* the span of meshes — exactly on small ones,
constructively on large ones; (b) sweeps the fault probability on a torus
and reports where `Prune2`'s guarantee empirically stops holding, next to
the (conservative) theory threshold.

Run:  python examples/mesh_resilience_study.py
"""

import numpy as np

from repro.core import bounds
from repro.expansion import estimate_edge_expansion
from repro.faults import random_node_faults
from repro.graphs.generators import mesh, torus
from repro.pruning import prune2
from repro.span import mesh_boundary_tree, random_compact_set, span_exact
from repro.util.tables import format_table


def span_table() -> None:
    rows = []
    for sides in ([3, 4], [2, 2, 3]):
        res = span_exact(mesh(sides), max_nodes=14)
        rows.append([mesh(sides).name, "exact", f"{res.value:.3f}", 2.0])
    for sides in ([16, 16], [8, 8, 8]):
        g = mesh(sides)
        best = 0.0
        accepted = 0
        seed = 0
        while accepted < 30 and seed < 500:
            u = random_compact_set(g, seed=seed)
            seed += 1
            if u is None:
                continue
            r = mesh_boundary_tree(g, u)
            accepted += 1
            if r.virtual_connected:
                best = max(best, r.ratio)
        rows.append([g.name, f"constructive ({accepted} samples)", f"{best:.3f}", 2.0])
    print(format_table(["mesh", "method", "span", "Thm 3.6 bound"], rows,
                       title="Span of d-dimensional meshes"))


def prune2_sweep() -> None:
    g = torus(14, 2)
    delta = g.max_degree
    eps = 1.0 / (2 * delta)
    alpha_e = estimate_edge_expansion(g).value
    theory = bounds.theorem34_conditions(g.n, delta, sigma=2.0)
    rows = []
    for p in (theory["p_max"], 0.02, 0.05, 0.1, 0.2, 0.3, 0.4):
        ok = 0
        trials = 5
        for t in range(trials):
            sc = random_node_faults(g, p, seed=1000 + t)
            res = prune2(sc.surviving, alpha_e, eps)
            h = res.surviving_graph
            good_size = h.n >= g.n / 2
            good_exp = (
                h.n >= 2 and estimate_edge_expansion(h).value >= eps * alpha_e - 1e-9
            )
            ok += int(good_size and good_exp)
        rows.append([f"{p:.2e}", f"{ok}/{trials}"])
    print()
    print(
        format_table(
            ["fault probability p", "Prune2 guarantee holds"],
            rows,
            title=(
                f"{g.name}: Theorem 3.4 sweep "
                f"(theory p* = {theory['p_max']:.2e}, ε = {eps:.3f}, "
                f"αe = {alpha_e:.3f})"
            ),
        )
    )
    print(
        "\nThe empirical threshold sits orders of magnitude above the theory"
        "\nvalue — the paper itself flags the δ^{4σ} dependency as loose"
        "\n(Section 4, open problems)."
    )


def main() -> None:
    span_table()
    prune2_sweep()


if __name__ == "__main__":
    main()
