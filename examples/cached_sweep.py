"""Cached, streaming, resumable sweeps with the Session API.

The determinism contract (identical ``(spec, seed)`` ⇒ identical result)
makes results content-addressable: a :class:`repro.api.Session` backed by a
store directory never executes the same scenario twice — across calls,
across processes, and across interruptions.  This example runs a
(topology × fault-rate × seed) robustness sweep three ways:

1. cold, streaming results out as they complete (``run_iter``);
2. interrupted halfway, then resumed — only the missing scenarios run;
3. fully warm — the whole sweep is served from disk with zero engine calls.

Run with ``PYTHONPATH=src python examples/cached_sweep.py``.
"""

import tempfile

from repro.api import FaultSpec, GraphSpec, ScenarioSpec, Session
from repro.util.tables import format_row_dicts


def build_sweep():
    """24 scenarios: two topologies × three fault rates × four seeds."""
    graphs = [
        GraphSpec("torus", {"sides": 10, "d": 2}),
        GraphSpec("hypercube", {"d": 6}),
    ]
    return [
        ScenarioSpec(
            graph=g,
            fault=FaultSpec("random_node", {"p": p}),
            seed=s,
            label=f"{g.generator}:p={p}",
        )
        for g in graphs
        for p in (0.02, 0.05, 0.10)
        for s in range(4)
    ]


def main() -> None:
    specs = build_sweep()
    with tempfile.TemporaryDirectory() as store_dir:
        # -- 1. cold + streaming: results land on disk as they finish ---- #
        session = Session(store_dir, workers=1)
        print(f"cold sweep of {len(specs)} scenarios (streaming):")
        for result in session.run_iter(specs[: len(specs) // 2]):
            print(
                f"  done {result.label:>16} seed={result.seed} "
                f"retention={result.expansion_retention}"
            )
        print(f"...interrupted halfway: {session.stats().results} stored\n")

        # -- 2. resume: the full sweep only executes the missing half ----- #
        resumed = Session(store_dir, workers=1)
        results = resumed.run_batch(specs)
        print(
            f"resumed full sweep: {resumed.hits} served from store, "
            f"{resumed.misses} computed\n"
        )

        # -- 3. warm: zero executions, identical fingerprints ------------- #
        warm = Session(store_dir, workers=1)
        replay = warm.run_batch(specs)
        assert warm.misses == 0
        assert [r.fingerprint() for r in replay] == [
            r.fingerprint() for r in results
        ]
        print(f"warm replay: {warm.hits} cached, {warm.misses} computed — "
              "fingerprints identical")

        rows = [r.row() for r in results[:6]]
        print()
        print(format_row_dicts(rows, title="first six results"))


if __name__ == "__main__":
    main()
