#!/usr/bin/env python
"""Regenerate the Section 1.1 survey: critical probabilities by family.

The paper's introduction surveys critical survival probabilities for the
classical families (Erdős–Rényi, Kesten, Ajtai–Komlós–Szemerédi,
Karlin–Nelson–Tamaki).  This example measures each threshold with the
percolation engine and prints it next to the literature value.

Finite-size effects matter: thresholds are asymptotic statements, and the
measured crossing point converges toward the literature value as instances
grow (pass --scale 2 to see the drift shrink).

Run:  python examples/percolation_thresholds.py [--scale 2]
"""

import argparse

from repro.core.experiments import experiment_e8_percolation_table
from repro.util.tables import format_row_dicts


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=1, help="instance size multiplier")
    parser.add_argument("--trials", type=int, default=10, help="MC trials per probe")
    args = parser.parse_args()

    rows = experiment_e8_percolation_table(
        seed=0, scale=args.scale, n_trials=args.trials, tol=0.02
    )
    print(format_row_dicts(rows, title="Critical probabilities: paper survey vs measured"))
    print(
        "\nReading: 'literature_p*' is the asymptotic threshold the paper"
        "\ncites; 'measured_p*' is the bracket midpoint where the largest-"
        "\ncomponent fraction crosses 0.2 on our finite instances."
    )


if __name__ == "__main__":
    main()
