#!/usr/bin/env python
"""CAN-style peer-to-peer overlay under churn (paper Section 4).

The paper closes by observing that CAN — whose steady state behaves like a
d-dimensional torus — "can tolerate a fault probability which is inversely
polynomial in its dimension without losing too much in its expansion
properties."  This example makes that concrete:

1. Build CAN overlays of the same size at several dimensions.
2. Subject each to increasing node-failure probabilities (peers leaving
   without notice).
3. Prune and measure: survivor fraction, retained expansion, and routing
   stretch inside the surviving overlay.

Run:  python examples/p2p_can_network.py
"""

import numpy as np

from repro.core import FaultExpansionAnalyzer, bounds
from repro.graphs.generators import can_overlay
from repro.graphs.traversal import largest_component
from repro.routing.paths import stretch_statistics
from repro.util.tables import format_table


def main() -> None:
    n_peers = 256
    rows = []
    for d in (2, 3, 4):
        overlay = can_overlay(n_peers, d, seed=d)
        analyzer = FaultExpansionAnalyzer(overlay, mode="node", epsilon=0.5)
        alpha = analyzer.baseline_expansion.value
        theory_p = bounds.mesh_tolerable_fault_probability(d)
        for p in (0.02, 0.08, 0.15):
            report = analyzer.random_faults(p=p, seed=100 * d + int(p * 100))
            h = report.prune_result.surviving_graph
            if h.n >= 4:
                comp = largest_component(h)
                h_conn = h.subgraph(comp)
                stretch = stretch_statistics(
                    overlay, h_conn, n_pairs=32, seed=7
                ).mean
            else:
                stretch = float("nan")
            rows.append(
                [
                    d,
                    overlay.n,
                    f"{alpha:.3f}",
                    f"{p:.2f}",
                    f"{theory_p:.2e}",
                    f"{report.surviving_fraction:.3f}",
                    f"{report.expansion_retention:.3f}",
                    f"{stretch:.3f}",
                ]
            )
    print(
        format_table(
            [
                "d",
                "peers",
                "α(G)",
                "p churn",
                "thm-3.4 p*",
                "|H|/n",
                "α(H)/α(G)",
                "mean stretch",
            ],
            rows,
            title="CAN overlay churn tolerance by dimension",
        )
    )
    print(
        "\nNotes: the Theorem 3.4 admissible probability (δ = 2d, σ ≤ 2) is"
        "\nextremely conservative — measured overlays tolerate far more churn,"
        "\nbut the *ordering* (higher d ⇒ lower tolerated churn per the bound,"
        "\nhigher measured robustness from degree growth) matches Section 4."
    )


if __name__ == "__main__":
    main()
