#!/usr/bin/env python
"""Generate docs/cli.md — the reference page for every `repro` subcommand.

The page is produced from the argparse parsers themselves (by capturing
each subcommand's ``--help`` output), so it cannot drift from the CLI:
``tests/integration/test_docs_snippets.py`` regenerates it and fails when
the committed file is stale.  Regenerate with::

    PYTHONPATH=src python scripts/gen_cli_docs.py
"""

from __future__ import annotations

import contextlib
import io
import os
import sys
from pathlib import Path

# Pin the help-text wrap width so the output is identical on every
# terminal/CI machine.
os.environ["COLUMNS"] = "79"

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.__main__ import main  # noqa: E402

#: (section title, argv that prints the help, lead-in description)
SECTIONS = [
    (
        "Experiment runner",
        ["--help"],
        "Regenerate paper experiments by id (`e1`..`e11`, or `all`).",
    ),
    (
        "`run` / `run-batch` — declarative scenarios",
        ["run", "--help"],
        "Execute scenario spec JSON (one object for `run`; `run-batch` "
        "takes an array, deduplicates baselines and fans out over worker "
        "processes).",
    ),
    (
        "`sweep` — declarative grids",
        ["sweep", "--help"],
        "Plan, execute or inspect a `SweepSpec` grid (trial-level caching "
        "and adaptive sampling policies). With `--server URL` the "
        "`submit`/`status`/`watch` verbs talk to a running sweep service "
        "instead of executing locally — results are bit-identical either "
        "way.",
    ),
    (
        "`serve` — the sweep service",
        ["serve", "--help"],
        "Run the long-running sweep service: an HTTP server "
        "(`/sweeps`, `/healthz`, `/metrics`) scheduling submitted sweeps "
        "over a pool of worker processes that share one result store. "
        "Identical concurrent submissions are deduplicated into one "
        "computation and warm grid points are served from the store. "
        "SIGTERM drains gracefully.",
    ),
    (
        "`paper run` — the reproduction artifact",
        ["paper", "run", "--help"],
        "Run the e1–e11 suite on a shared session and emit the "
        "self-contained artifact directory (report, figures, tables, "
        "manifest).",
    ),
    (
        "`paper render` — re-render without executing",
        ["paper", "render", "--help"],
        "Rebuild report.md / report.html / figures / manifest.json from an "
        "artifact's `tables/*.json` — zero engine calls.",
    ),
    (
        "`paper diff` — compare two runs",
        ["paper", "diff", "--help"],
        "Statistically compare two artifacts: flags only results whose "
        "confidence intervals do not overlap (exit code 1), reports "
        "everything else informationally.",
    ),
    (
        "`cache` — store maintenance",
        ["cache", "--help"],
        "Inspect, compact or clear a persistent result store.",
    ),
    (
        "`registry` — component listing",
        ["registry", "--help"],
        "List registered generators, fault models, pruners and cut finders "
        "with their signatures and metadata.",
    ),
]

HEADER = """\
# CLI reference

All commands run as `python -m repro ...` (or the `repro` console script
after `pip install -e .`). This page is generated from the argparse
parsers by `scripts/gen_cli_docs.py` — do not edit by hand.
"""


def _capture_help(argv: list[str]) -> str:
    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        try:
            main(argv)
        except SystemExit:
            pass
    return buf.getvalue().rstrip()


def generate() -> str:
    parts = [HEADER]
    for title, argv, blurb in SECTIONS:
        invocation = " ".join(["python -m repro"] + argv)
        parts.append(f"## {title}\n")
        parts.append(blurb + "\n")
        parts.append(f"```text\n$ {invocation}\n{_capture_help(argv)}\n```\n")
    parts.append(
        "## `components` — bare component names\n\n"
        "Legacy plain listing of every registered component name "
        "(`python -m repro components`); prefer `registry` for signatures "
        "and metadata.\n"
    )
    return "\n".join(parts)


def main_cli() -> int:
    target = REPO / "docs" / "cli.md"
    content = generate()
    target.parent.mkdir(exist_ok=True)
    target.write_text(content, encoding="utf-8")
    print(f"wrote {target} ({len(content.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main_cli())
